// Bytecode format of the compiled netlist backend (docs/codegen.md).
//
// At elaboration time the lowering pass (lower.cpp) walks the finalized
// netlist, its schedule graph, and the optimizer plan, and emits three flat
// instruction tapes — start (cycle_start phase), resolve (fixed-point phase
// in topological SCC order), commit (end_of_cycle phase) — executed by a
// threaded-code interpreter (interp.cpp, computed-goto dispatch).  This is
// the in-process analogue of LSE's "simulator executable" emission: instead
// of generating C source per netlist, the structure is compiled into a
// register-based bytecode whose operands are dense module/connection ids.
//
// Devirtualization: the stock PCL/CCL module kinds get one opcode group per
// kind, whose bodies invoke the kind's hooks through non-virtual calls
// (static_cast<T&>(m).T::hook()).  Kind matching is by exact typeid, so a
// user subclass of a stock module safely falls back to the CALL_VIRTUAL
// forms (StartVirtual / FwdVirtual / BwdVirtual / EndVirtual).  Stock kinds
// that do not override a hook (the base hook is an empty no-op) lower to no
// instruction at all in that phase.
//
// OptPlan facts are baked in at emit time: constant channels emit nothing
// (SchedulerBase::apply_consts pre-resolves them), elided modules emit
// nothing anywhere, fused chains emit one Chain instruction per covered
// channel (the sweep is cycle-stamped, so repeats are cheap), and candidate
// SCCs of the quiescence gate are guarded by a TrySleep instruction that
// jumps over the SCC's instructions when the cached result is replayed.
#pragma once

#include <cstdint>
#include <vector>

namespace liberty::gen {

// Devirtualized module kinds per phase.  A kind appears in a list iff the
// class overrides that hook; the lists drive the Op enum, the interpreter's
// dispatch table and opcode bodies, and the disassembler's name table, so
// they must stay consistent (X-macro expansion keeps them so).
#define LIBERTY_GEN_START_KINDS(X)                                   \
  X(Source) X(Queue) X(Delay) X(Arbiter) X(Crossbar) X(Buffer)     \
  X(MemoryArray) X(Router) X(TrafficGen)
#define LIBERTY_GEN_REACT_KINDS(X)                                  \
  X(Queue) X(Arbiter) X(Probe) X(FuncMap) X(Tee) X(Mux) X(Demux) \
  X(Crossbar) X(Router)
#define LIBERTY_GEN_COMMIT_KINDS(X)                                   \
  X(Source) X(Sink) X(Queue) X(Delay) X(Arbiter) X(Probe) X(Tee)   \
  X(Crossbar) X(Buffer) X(MemoryArray) X(Router) X(TrafficGen)     \
  X(TrafficSink)

/// Opcodes.  Operand conventions (see struct Instr):
///   Start<K>, StartVirtual        a = module id
///   StartGated                    a = module id (asleep check, then virtual)
///   TrySleep                      a = SCC index, b = instructions to skip
///                                     when the SCC replays from cache
///   RunScc                        a = SCC index (multi-node/self-loop SCCs
///                                     iterate via AnalyzedScheduler::run_scc)
///   Chain                         a = chain index, b = channel id (fused
///                                     sweep; generic fallback if unresolved)
///   AutoAck                       a = connection id (kernel ack := enable)
///   DefFwd / DefBwd               a = connection id (default if undriven)
///   Fwd<K> / Bwd<K>, *Virtual     a = module id, b = connection id
///                                     (react-then-default, devirtualized)
///   End<K>, EndVirtual            a = module id
///   EndGated                      a = module id (skip_end_of_cycle check)
///   Halt                          end of tape
enum class Op : std::uint8_t {
#define LIBERTY_GEN_OP(K) Start##K,
  LIBERTY_GEN_START_KINDS(LIBERTY_GEN_OP)
#undef LIBERTY_GEN_OP
  StartGated,
  StartVirtual,
  TrySleep,
  RunScc,
  Chain,
  AutoAck,
  DefFwd,
  DefBwd,
#define LIBERTY_GEN_OP(K) Fwd##K,
  LIBERTY_GEN_REACT_KINDS(LIBERTY_GEN_OP)
#undef LIBERTY_GEN_OP
  FwdVirtual,
#define LIBERTY_GEN_OP(K) Bwd##K,
  LIBERTY_GEN_REACT_KINDS(LIBERTY_GEN_OP)
#undef LIBERTY_GEN_OP
  BwdVirtual,
#define LIBERTY_GEN_OP(K) End##K,
  LIBERTY_GEN_COMMIT_KINDS(LIBERTY_GEN_OP)
#undef LIBERTY_GEN_OP
  EndGated,
  EndVirtual,
  Halt,
};

[[nodiscard]] const char* op_name(Op op) noexcept;

/// One fixed-size threaded-code instruction.  Operands are indices into the
/// scheduler's dense module/connection tapes (or SCC/chain tables), not
/// pointers — smaller, and the disassembly stays meaningful on its own.
struct Instr {
  Op op = Op::Halt;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// The lowered executable form of one netlist: three Halt-terminated tapes
/// plus lowering statistics (reported as gen.* scheduler counters).
struct Program {
  std::vector<Instr> start;
  std::vector<Instr> resolve;
  std::vector<Instr> commit;
  std::uint64_t devirt_ops = 0;   // devirtualized instructions emitted
  std::uint64_t virtual_ops = 0;  // CALL_VIRTUAL fallbacks emitted
};

}  // namespace liberty::gen
