// Grids-in-a-box (the paper's Figure 2(c)).
//
// "Similar modules used to simulate a chip multiprocessor can now be
// extended to simulate systems of a totally different scale — a petaflops
// multi-processor grid-in-a-box, with many GP modules from UPL,
// sophisticated network interface controllers from NIL, interconnected with
// high-speed electrical or optical fabrics from CCL."
//
// Message-passing organization: every board carries a local memory and an
// mpl::DmaCtl; boards exchange halo data with their ring neighbours over a
// CCL ring fabric through nil::FabricAdapters.  The host harness programs
// the DMA register blocks the way node firmware would.
#include <cstdio>
#include <vector>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/mpl/mpl.hpp"
#include "liberty/nil/nil.hpp"
#include "liberty/pcl/pcl.hpp"

using namespace liberty;
using core::Params;

int main() {
  constexpr std::size_t kBoards = 8;
  constexpr int kHaloWords = 32;

  core::Netlist nl;
  ccl::Fabric ring = ccl::build_ring(nl, "fabric", kBoards);

  std::vector<pcl::MemoryArray*> mems;
  std::vector<mpl::DmaCtl*> dmas;
  for (std::size_t i = 0; i < kBoards; ++i) {
    auto& mem = nl.make<pcl::MemoryArray>(
        "mem" + std::to_string(i), Params().set("latency", 2));
    auto& dma = nl.make<mpl::DmaCtl>("dma" + std::to_string(i),
                                     Params().set("chunk_words", 8));
    auto& ni = nl.make<nil::FabricAdapter>(
        "ni" + std::to_string(i),
        Params().set("id", static_cast<std::int64_t>(i)).set("vcs", 1));
    mems.push_back(&mem);
    dmas.push_back(&dma);
    nl.connect(dma.out("mem_req"), mem.in("req"));
    nl.connect(mem.out("resp"), dma.in("mem_resp"));
    nl.connect(dma.out("net_out"), ni.in("msg_in"));
    nl.connect(ni.out("msg_out"), dma.in("net_in"));
    nl.connect_at(ni.out("net_out"), 0, ring.inject_port(i), 0);
    nl.connect_at(ring.eject_port(i), 0, ni.in("net_in"), 0);
  }
  nl.finalize();

  // Fill each board's send buffer with its board signature.
  for (std::size_t i = 0; i < kBoards; ++i) {
    for (int w = 0; w < kHaloWords; ++w) {
      mems[i]->poke(1000 + static_cast<std::uint64_t>(w),
                    static_cast<std::int64_t>(i) * 1000 + w);
    }
  }
  // Program a ring shift: board i sends its halo to board (i+1) % N.
  for (std::size_t i = 0; i < kBoards; ++i) {
    dmas[i]->start_transfer(1000, (i + 1) % kBoards, 2000, kHaloWords);
  }

  core::Simulator sim(nl, core::SchedulerKind::Static);
  std::uint64_t cycles = 0;
  while (cycles < 200'000) {
    bool done = true;
    for (const auto* d : dmas) done = done && d->rx_done() && !d->tx_busy();
    if (done) break;
    sim.step();
    ++cycles;
  }

  bool ok = true;
  for (std::size_t i = 0; i < kBoards; ++i) {
    const auto from = (i + kBoards - 1) % kBoards;
    for (int w = 0; w < kHaloWords; ++w) {
      if (mems[i]->peek(2000 + static_cast<std::uint64_t>(w)) !=
          static_cast<std::int64_t>(from) * 1000 + w) {
        ok = false;
      }
    }
  }

  std::uint64_t flits = 0;
  for (const ccl::Router* r : ring.routers) {
    flits += r->stats().counter_value("flits_out");
  }
  std::printf("grid-in-a-box: %zu boards on a ring, %d-word halo shift\n",
              kBoards, kHaloWords);
  std::printf("exchange completed in %llu cycles (%s), %llu router flits, "
              "%.1f pJ fabric energy\n",
              (unsigned long long)cycles, ok ? "verified" : "MISMATCH",
              (unsigned long long)flits, ring.total_router_energy_pj());
  const double words = static_cast<double>(kBoards * kHaloWords);
  std::printf("aggregate bandwidth: %.3f words/cycle\n",
              cycles == 0 ? 0.0 : words / static_cast<double>(cycles));
  return ok ? 0 : 1;
}
