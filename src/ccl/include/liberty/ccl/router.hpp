// Router: input-buffered, virtual-channel wormhole router.
//
// Multi-flit packets: the head flit makes the routing decision and locks
// its output channel; body flits follow the head through the same
// input-VC FIFO and inherit its route; the tail flit releases the lock.
// Other packets cannot interleave into a locked output — the wormhole
// discipline.
//
// The CCL's central component (§3.3): parameterized over VC count, buffer
// depth, routing function, and geometry, with the Orion power model
// attached to its buffer/arbiter/crossbar events.  The same template serves
// on-chip mesh networks (XY routing), rings (shortest-path), and arbitrary
// fabrics (custom routing hook).
//
// Port convention (indices into the `in`/`out` ports, fixed by the
// topology builders):
//   mesh: 0 = local, 1 = east, 2 = west, 3 = north, 4 = south
//   ring: 0 = local, 1 = clockwise, 2 = counter-clockwise
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "liberty/ccl/flit.hpp"
#include "liberty/ccl/power.hpp"
#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"

namespace liberty::ccl {

/// Parameters:
///   id              this router's node id                          [0]
///   nodes           total node count                               [1]
///   routing         "xy" | "torus_xy" (wrap-aware shortest per
///                   dimension) | "ring" | "dst" (dst==port) | "custom" [xy]
///   cols, rows      mesh geometry (xy routing)                     [1,1]
///   vcs             virtual channels per input                     [2]
///   depth           buffer depth per VC                            [4]
///   pipeline        cycles from buffer write to switch eligibility [1]
///   flit_bits       power model width                              [64]
///
/// Stats: flits_in, flits_out, delivered (local ejection), buffer
/// occupancy, allocation conflicts.  Energy via power().
class Router : public liberty::core::Module {
 public:
  using RouteFn = std::function<std::size_t(const Flit&)>;

  Router(const std::string& name, const liberty::core::Params& params);

  void init() override;
  void cycle_start(liberty::core::Cycle c) override;
  void react() override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  /// Algorithmic parameter: replace the routing function.
  void set_route_fn(RouteFn fn) { route_fn_ = std::move(fn); }

  [[nodiscard]] const RouterPower& power() const noexcept { return power_; }
  [[nodiscard]] const ThermalModel& thermal() const noexcept {
    return thermal_;
  }
  [[nodiscard]] std::size_t node_id() const noexcept { return id_num_; }

 private:
  struct Entry {
    liberty::Value value;
    std::size_t out_port;
    liberty::core::Cycle ready;
  };

  [[nodiscard]] std::size_t route(const Flit& f) const;
  [[nodiscard]] std::size_t buffer_index(std::size_t input,
                                         std::size_t vc) const {
    return input * vcs_ + vc;
  }

  liberty::core::Port& in_;
  liberty::core::Port& out_;
  std::size_t id_num_;
  std::size_t nodes_;
  std::string routing_;
  std::size_t cols_;
  std::size_t rows_;
  std::size_t vcs_;
  std::size_t depth_;
  std::uint64_t pipeline_;
  RouteFn route_fn_;
  RouterPower power_;
  ThermalModel thermal_;

  std::vector<std::deque<Entry>> buffers_;  // [input * vcs + vc]
  std::vector<std::size_t> last_route_;     // per-buffer: head's out port
  std::vector<std::size_t> rr_;             // per-output rotation pointer
  std::vector<int> grant_;                  // per-output winning buffer, -1
  std::vector<int> out_lock_;               // per-output: owning buffer, -1

  // Resolved-once stat handles (see StatSet::bind).
  liberty::Accumulator* occupancy_stat_ = nullptr;
  liberty::Counter* flits_in_stat_ = nullptr;
  liberty::Counter* flits_out_stat_ = nullptr;
  liberty::Counter* delivered_stat_ = nullptr;
  liberty::Counter* alloc_conflicts_stat_ = nullptr;
  liberty::Counter* buffer_stalls_stat_ = nullptr;
};

}  // namespace liberty::ccl
