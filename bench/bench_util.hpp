// Shared helpers for the experiment harness (one binary per experiment in
// DESIGN.md; EXPERIMENTS.md records the outputs).
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/lss/elaborator.hpp"
#include "liberty/core/registry.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/mpl/mpl.hpp"
#include "liberty/nil/nil.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/upl/upl.hpp"

namespace liberty::bench {

/// Registry with every component library.
inline core::ModuleRegistry& registry() {
  static core::ModuleRegistry r = [] {
    core::ModuleRegistry reg;
    pcl::register_pcl(reg);
    upl::register_upl(reg);
    ccl::register_ccl(reg);
    mpl::register_mpl(reg);
    nil::register_nil(reg);
    return reg;
  }();
  return r;
}

/// Wall-clock seconds for a callable.
template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Markdown-style table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void print() const {
    auto line = [](const std::vector<std::string>& cells) {
      std::printf("|");
      for (const auto& c : cells) std::printf(" %-14s |", c.c_str());
      std::printf("\n");
    };
    line(headers_);
    std::printf("|");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%s|", std::string(16, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}
inline std::string fmt(std::uint64_t v) { return std::to_string(v); }

}  // namespace liberty::bench
