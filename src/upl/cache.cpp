#include "liberty/upl/cache.hpp"

#include <unordered_map>

#include "liberty/pcl/payloads.hpp"
#include "liberty/upl/mem_protocol.hpp"
#include "liberty/support/error.hpp"

namespace liberty::upl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;
using liberty::pcl::MemReq;
using liberty::pcl::MemResp;

// ---------------------------------------------------------------------------
// CacheModel
// ---------------------------------------------------------------------------

CacheModel::CacheModel(std::size_t sets, std::size_t ways,
                       std::size_t line_words, Replacement repl,
                       std::uint64_t seed)
    : sets_(sets),
      ways_(ways),
      line_words_(line_words),
      repl_(repl),
      rng_(seed),
      lines_(sets, std::vector<Line>(ways)) {
  if (sets == 0 || ways == 0 || line_words == 0) {
    throw liberty::ElaborationError(
        "cache geometry must be nonzero (sets/ways/line_words)");
  }
}

CacheModel::Line* CacheModel::lookup(std::uint64_t addr, bool touch) {
  auto& set = lines_[set_of(addr)];
  const std::uint64_t tag = tag_of(addr);
  for (auto& line : set) {
    if (line.valid && line.tag == tag) {
      if (touch && repl_ == Replacement::Lru) line.stamp = ++clock_;
      return &line;
    }
  }
  return nullptr;
}

const CacheModel::Line* CacheModel::lookup(std::uint64_t addr) const {
  const auto& set = lines_[set_of(addr)];
  const std::uint64_t tag = tag_of(addr);
  for (const auto& line : set) {
    if (line.valid && line.tag == tag) return &line;
  }
  return nullptr;
}

CacheModel::Line& CacheModel::victim(std::uint64_t addr) {
  auto& set = lines_[set_of(addr)];
  for (auto& line : set) {
    if (!line.valid) return line;
  }
  if (repl_ == Replacement::Random) {
    return set[rng_.below(set.size())];
  }
  // LRU and FIFO both evict the minimum stamp; they differ in when the
  // stamp refreshes (lookup vs fill).
  Line* best = &set.front();
  for (auto& line : set) {
    if (line.stamp < best->stamp) best = &line;
  }
  return *best;
}

void CacheModel::fill(Line& way, std::uint64_t addr, bool dirty) {
  way.valid = true;
  way.dirty = dirty;
  way.tag = tag_of(addr);
  way.stamp = ++clock_;
  way.meta = 0;
}

bool CacheModel::invalidate(std::uint64_t addr) {
  if (Line* line = lookup(addr, /*touch=*/false)) {
    line->valid = false;
    line->dirty = false;
    return true;
  }
  return false;
}

void CacheModel::save(liberty::core::StateWriter& w) const {
  w.put_u64(clock_);
  liberty::core::save_rng(w, rng_);
  for (const auto& set : lines_) {
    for (const Line& line : set) {
      w.put_bool(line.valid);
      w.put_bool(line.dirty);
      w.put_u64(line.tag);
      w.put_u64(line.stamp);
      w.put_i64(line.meta);
    }
  }
}

void CacheModel::load(liberty::core::StateReader& r) {
  clock_ = r.get_u64();
  liberty::core::load_rng(r, rng_);
  for (auto& set : lines_) {
    for (Line& line : set) {
      line.valid = r.get_bool();
      line.dirty = r.get_bool();
      line.tag = r.get_u64();
      line.stamp = r.get_u64();
      line.meta = r.get_i64();
    }
  }
}

CacheModel::Replacement replacement_from_string(const std::string& s) {
  if (s == "lru") return CacheModel::Replacement::Lru;
  if (s == "fifo") return CacheModel::Replacement::Fifo;
  if (s == "random") return CacheModel::Replacement::Random;
  throw liberty::ElaborationError("unknown replacement policy '" + s + "'");
}

// ---------------------------------------------------------------------------
// CacheModule
// ---------------------------------------------------------------------------

namespace {
/// Per-line cached data lives beside the tag array.
using LineData = std::unordered_map<std::uint64_t, std::vector<std::int64_t>>;
}  // namespace

// Stored out-of-line to keep the header light.
struct CacheModuleState {
  LineData data;
};

CacheModule::CacheModule(const std::string& name, const Params& params)
    : Module(name),
      cpu_req_(add_in("cpu_req", AckMode::Managed, 0, 1)),
      cpu_resp_(add_out("cpu_resp", 0, 1)),
      mem_req_(add_out("mem_req", 0, 1)),
      mem_resp_(add_in("mem_resp", AckMode::AutoAccept, 0, 1)),
      model_(static_cast<std::size_t>(params.get_int("sets", 64)),
             static_cast<std::size_t>(params.get_int("ways", 2)),
             static_cast<std::size_t>(params.get_int("line_words", 4)),
             replacement_from_string(
                 params.get_string("replacement", "lru")),
             static_cast<std::uint64_t>(params.get_int("seed", 7))),
      hit_latency_(static_cast<std::uint64_t>(params.get_int("hit_latency", 1))),
      mshr_limit_(static_cast<std::size_t>(params.get_int("mshrs", 4))) {
  write_allocate_ = params.get_bool("write_allocate", true);
  if (!write_allocate_) {
    throw liberty::ElaborationError(
        "upl.cache: only write-allocate is implemented");
  }
  line_data_ = std::make_shared<CacheModuleState>();
}

void CacheModule::cycle_start(Cycle c) {
  if (!resp_queue_.empty() && resp_ready_.front() <= c) {
    cpu_resp_.send(resp_queue_.front());
  } else {
    cpu_resp_.idle();
  }
  if (!memq_.empty()) {
    mem_req_.send(memq_.front());
  } else {
    mem_req_.idle();
  }
  if (mshrs_.size() < mshr_limit_) {
    cpu_req_.ack();
  } else {
    cpu_req_.nack();
    stats().counter("mshr_stalls").inc();
  }
}

void CacheModule::handle_cpu_request(const liberty::Value& v) {
  const auto req = v.as<MemReq>();
  stats().counter("accesses").inc();
  auto& data = line_data_->data;

  if (CacheModel::Line* line = model_.lookup(req->addr)) {
    stats().counter("hits").inc();
    const std::uint64_t base = model_.line_addr(req->addr);
    auto& words = data[base];
    const std::size_t off = static_cast<std::size_t>(req->addr - base);
    std::int64_t result = 0;
    if (req->op == MemReq::Op::Read) {
      result = words[off];
    } else {
      words[off] = req->data;
      line->dirty = true;
    }
    resp_queue_.push_back(liberty::Value::make<MemResp>(
        req->tag, result, req->op == MemReq::Op::Write));
    resp_ready_.push_back(now() + hit_latency_);
    return;
  }

  stats().counter("misses").inc();
  const std::uint64_t base = model_.line_addr(req->addr);
  // Coalesce with an in-flight fetch of the same line.
  for (auto& m : mshrs_) {
    if (m.line == base) {
      m.waiters.push_back(v);
      return;
    }
  }
  Mshr m;
  m.line = base;
  m.tag = next_fill_tag_++;
  m.waiters.push_back(v);
  mshrs_.push_back(std::move(m));
  const bool exclusive = req->op == MemReq::Op::Write;
  memq_.push_back(liberty::Value::make<LineReq>(
      exclusive ? LineReq::Kind::FetchExclusive : LineReq::Kind::Fetch, base,
      mshrs_.back().tag, id()));
}

void CacheModule::end_of_cycle() {
  if (cpu_resp_.transferred()) {
    resp_queue_.pop_front();
    resp_ready_.pop_front();
  }
  if (mem_req_.transferred()) memq_.pop_front();

  if (cpu_req_.transferred()) handle_cpu_request(cpu_req_.data());

  if (mem_resp_.transferred()) {
    const auto fill = mem_resp_.data().as<LineResp>();
    auto& data = line_data_->data;
    // Install, evicting (and writing back) a victim if necessary.
    CacheModel::Line& way = model_.victim(fill->line);
    if (way.valid) {
      const std::size_t set = model_.set_of(fill->line);
      const std::uint64_t victim_addr = model_.addr_of(way, set);
      stats().counter("evictions").inc();
      if (way.dirty) {
        stats().counter("writebacks").inc();
        memq_.push_back(liberty::Value::make<LineReq>(
            LineReq::Kind::Writeback, victim_addr, 0, id(),
            data[victim_addr]));
      }
      data.erase(victim_addr);
    }
    model_.fill(way, fill->line, /*dirty=*/false);
    data[fill->line] = fill->words;

    // Complete every waiter coalesced onto this line.
    for (std::size_t i = 0; i < mshrs_.size(); ++i) {
      if (mshrs_[i].tag != fill->tag) continue;
      for (const auto& wv : mshrs_[i].waiters) {
        const auto req = wv.as<MemReq>();
        auto& words = data[fill->line];
        const auto off = static_cast<std::size_t>(req->addr - fill->line);
        std::int64_t result = 0;
        if (req->op == MemReq::Op::Read) {
          result = words[off];
        } else {
          words[off] = req->data;
          if (CacheModel::Line* line = model_.lookup(req->addr)) {
            line->dirty = true;
          }
        }
        resp_queue_.push_back(liberty::Value::make<MemResp>(
            req->tag, result, req->op == MemReq::Op::Write));
        resp_ready_.push_back(now() + 1);
      }
      mshrs_.erase(mshrs_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  stats().accumulator("mshr_occupancy").add(static_cast<double>(mshrs_.size()));
}

void CacheModule::declare_deps(Deps& deps) const {
  deps.state_only(cpu_resp_);
  deps.state_only(mem_req_);
  deps.state_only(cpu_req_);
}

}  // namespace liberty::upl
