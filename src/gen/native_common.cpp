// Native codegen pieces that exist in every build, including
// -DLIBERTY_NATIVE_CODEGEN=OFF: the options block (front ends parse their
// flags unconditionally), the compile-invocation counter (reads zero when
// the backend never runs), and the pure cache-key function (unit-tested
// without a toolchain).
#include <atomic>
#include <cstdint>
#include <string_view>

#include "liberty/gen/native.hpp"
#include "liberty/obs/metrics.hpp"

namespace liberty::gen {

NativeOptions& native_options() {
  static NativeOptions opts;
  return opts;
}

namespace detail {

std::atomic<std::uint64_t>& compile_invocation_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

std::atomic<std::uint64_t>& cache_hit_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

std::atomic<std::uint64_t>& cache_quarantine_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

std::atomic<std::uint64_t>& compile_retry_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

std::atomic<std::uint64_t>& compile_timeout_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

}  // namespace detail

std::uint64_t native_compile_invocations() noexcept {
  return detail::compile_invocation_counter().load(std::memory_order_relaxed);
}

std::uint64_t native_cache_hits() noexcept {
  return detail::cache_hit_counter().load(std::memory_order_relaxed);
}

std::uint64_t native_cache_quarantined() noexcept {
  return detail::cache_quarantine_counter().load(std::memory_order_relaxed);
}

std::uint64_t native_compile_retries() noexcept {
  return detail::compile_retry_counter().load(std::memory_order_relaxed);
}

std::uint64_t native_compile_timeouts() noexcept {
  return detail::compile_timeout_counter().load(std::memory_order_relaxed);
}

void export_native_metrics(obs::MetricsRegistry& reg) {
  reg.add_counter("gen.native.cache.hits", native_cache_hits());
  reg.add_counter("gen.native.cache.quarantined", native_cache_quarantined());
  reg.add_counter("gen.native.cache.compile_retries",
                  native_compile_retries());
  reg.add_counter("gen.native.cache.compile_timeouts",
                  native_compile_timeouts());
  reg.add_counter("gen.native.cache.compiles", native_compile_invocations());
}

std::uint64_t native_cache_key(std::string_view source,
                               std::string_view compiler_id,
                               int backend_opt) noexcept {
  // FNV-1a, with a field separator mixed in between ingredients so that
  // moving bytes across a boundary cannot collide.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  const auto mix = [&](std::string_view s) {
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
    mix_byte(0xffu);
  };
  mix(source);
  mix(compiler_id);
  auto v = static_cast<std::uint64_t>(backend_opt);
  for (int i = 0; i < 8; ++i) {
    mix_byte(static_cast<unsigned char>(v & 0xffu));
    v >>= 8;
  }
  return h;
}

}  // namespace liberty::gen
