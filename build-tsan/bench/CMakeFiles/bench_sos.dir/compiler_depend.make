# Empty compiler generated dependencies file for bench_sos.
# This may be replaced when dependencies are built.
