# Empty dependencies file for bench_coherence.
# This may be replaced when dependencies are built.
