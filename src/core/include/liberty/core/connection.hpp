// Connection: one point-to-point link between an output endpoint and an
// input endpoint, carrying the paper's three-signal handshake.
//
// Per §2.1 of the paper, "each connection in LSE actually corresponds to a
// connection of 3 signals ... used to negotiate whether or not data can be
// transmitted across a connection in a particular time-step":
//
//   data    producer -> consumer    the Value being offered
//   enable  producer -> consumer    producer asserts it is offering data
//   ack     consumer -> producer    consumer asserts it accepts
//
// We group (data, enable) into the *forward* channel — a producer either
// send()s a value (enable asserted + data) or idles (enable negated) — and
// ack into the *backward* channel.  Each channel starts every cycle Unknown
// and resolves exactly once (monotonically); a second, different drive is a
// module bug and throws SimulationError.  A transfer occurs in a cycle iff
// enable and ack are both asserted at the end of the cycle.
//
// Control override (§2.1 "LSE allows the user to override the default
// control semantics so that any system behavior can be specified"): a user
// may install a transfer gate on any connection.  The gate sees the offered
// value and may veto the consumer's acceptance, independent of either
// module's functionality — e.g. to inject stalls, model faults, or filter
// traffic without touching component code.
//
// Concurrency (ParallelScheduler): a channel is only ever *driven* from one
// thread per wave (the cluster owning its driver module), but any module may
// *observe* enable/ack concurrently.  The two control states are therefore
// atomic: data_ is published before the enable_ store, so an observer that
// sees the offer known may read data() without further synchronization.
// enable_/ack_ use seq_cst so that when a forward and backward channel of
// the same connection resolve concurrently on different threads, at least
// one of the two resolutions observes the completed transfer (the schedulers
// rely on this to maintain the transferred-connection dirty list without an
// end-of-cycle scan).  Strictly single-threaded schedulers may switch a
// connection into relaxed publication (SchedulerBase::set_relaxed_resolution)
// to drop the seq_cst store fences from the resolve hot path; the dirty-list
// guarantee then holds trivially because one thread performs every resolve.
// Transfer gates require producer and consumer to be co-scheduled; gates
// must be installed before scheduler construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "liberty/core/types.hpp"
#include "liberty/support/error.hpp"
#include "liberty/support/tristate.hpp"
#include "liberty/support/value.hpp"

namespace liberty::core {

class FaultHook;
class Module;
class Netlist;
class Connection;

/// How the backward (ack) channel of a connection is produced.
enum class AckMode : std::uint8_t {
  /// The consuming module's code drives ack/nack explicitly.
  Managed,
  /// The kernel drives ack := enable as soon as the forward channel
  /// resolves (the consumer accepts everything offered).  This is the
  /// "default control semantics" of §2.1: datapath-only specifications work
  /// without the user writing any control.
  AutoAccept,
};

/// Scheduler callback interface: invoked whenever a channel resolves so the
/// event-driven scheduler can re-activate the modules that observe it.
class ResolveHooks {
 public:
  virtual ~ResolveHooks() = default;
  virtual void on_forward_resolved(Connection&) = 0;
  virtual void on_backward_resolved(Connection&) = 0;
};

class Connection {
 public:
  /// User control override: returns whether a transfer offered with this
  /// value may complete.  Applied on top of the consumer's own acceptance.
  using TransferGate = std::function<bool(const Value&)>;

  Connection(ConnId id, Module* producer, std::string producer_ref,
             Module* consumer, std::string consumer_ref)
      : id_(id),
        producer_(producer),
        consumer_(consumer),
        producer_ref_(std::move(producer_ref)),
        consumer_ref_(std::move(consumer_ref)) {}

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] ConnId id() const noexcept { return id_; }
  [[nodiscard]] Module* producer() const noexcept { return producer_; }
  [[nodiscard]] Module* consumer() const noexcept { return consumer_; }
  [[nodiscard]] const std::string& producer_ref() const noexcept {
    return producer_ref_;
  }
  [[nodiscard]] const std::string& consumer_ref() const noexcept {
    return consumer_ref_;
  }

  [[nodiscard]] AckMode ack_mode() const noexcept { return ack_mode_; }
  void set_ack_mode(AckMode m) noexcept { ack_mode_ = m; }

  void set_transfer_gate(TransferGate g) { gate_ = std::move(g); }
  [[nodiscard]] bool has_transfer_gate() const noexcept {
    return static_cast<bool>(gate_);
  }

  // --- Forward channel ----------------------------------------------------

  [[nodiscard]] bool forward_known() const noexcept {
    return known(enable_.load(std::memory_order_seq_cst));
  }
  [[nodiscard]] bool enabled() const noexcept {
    return asserted(enable_.load(std::memory_order_seq_cst));
  }
  [[nodiscard]] const Value& data() const noexcept { return data_; }

  /// Producer offers `v` this cycle.
  void send(const Value& v) { resolve_forward(Tristate::Asserted, v); }
  /// Producer explicitly offers nothing this cycle.
  void idle() { resolve_forward(Tristate::Negated, Value()); }

  // --- Backward channel ---------------------------------------------------

  [[nodiscard]] bool ack_known() const noexcept {
    return known(ack_.load(std::memory_order_seq_cst));
  }
  [[nodiscard]] bool acked() const noexcept {
    return asserted(ack_.load(std::memory_order_seq_cst));
  }

  /// Consumer accepts this cycle's offer.  With a transfer gate installed,
  /// final acceptance additionally requires the gate's approval, so the ack
  /// may not resolve until the forward channel does.
  void ack() { resolve_backward(Tristate::Asserted); }
  /// Consumer refuses this cycle.
  void nack() { resolve_backward(Tristate::Negated); }

  // --- Cycle-boundary queries ----------------------------------------------

  [[nodiscard]] bool fully_resolved() const noexcept {
    return forward_known() && ack_known();
  }

  /// True when a transfer happens this cycle (valid once fully resolved).
  [[nodiscard]] bool transferred() const noexcept {
    return enabled() && acked();
  }

  [[nodiscard]] std::uint64_t transfer_count() const noexcept {
    return transfers_;
  }
  /// Number of channel resolutions applied by the kernel's quiescence
  /// defaulting rather than by module code.  Nonzero values flag
  /// under-specified control in partial models.
  [[nodiscard]] std::uint64_t defaulted_count() const noexcept {
    return defaulted_.load(std::memory_order_relaxed);
  }

  /// Bumps every time either channel resolves; a cheap global progress
  /// measure.  Each half is written only by the thread that resolves that
  /// channel, so the halves are plain single-writer counters.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return gen_fwd_.load(std::memory_order_relaxed) +
           gen_bwd_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::string describe() const;

 private:
  friend class Netlist;
  friend class SchedulerBase;

  // Both resolve paths dispatch through the fault seam first: an installed
  // FaultHook (liberty/core/fault.hpp) may rewrite the signal/value about
  // to be applied.  Interception happens *before* the idempotence compare,
  // so re-drives of an already-mapped channel map identically and still
  // count as idempotent.  The faulted variants live out of line
  // (kernel/fault.cpp) to keep this hot path call-free when no hook is
  // installed.

  void resolve_forward(Tristate enable, const Value& v) {
    if (fault_ != nullptr) {
      resolve_forward_faulted(enable, v);
      return;
    }
    resolve_forward_impl(enable, v);
  }

  void resolve_backward(Tristate intent) {
    if (fault_ != nullptr) {
      resolve_backward_faulted(intent);
      return;
    }
    resolve_backward_impl(intent);
  }

  void resolve_forward_faulted(Tristate enable, const Value& v);
  void resolve_backward_faulted(Tristate intent);

  void resolve_forward_impl(Tristate enable, const Value& v) {
    if (forward_known()) {
      if (enable_.load(std::memory_order_relaxed) == enable && data_ == v) {
        return;  // idempotent re-drive
      }
      throw liberty::SimulationError(
          "non-monotone forward drive on connection " + describe());
    }
    // Published by the enable_ store below.  An unresolved channel's data_
    // is always the post-reset token, so token drives (idle(), token
    // traffic) skip the variant assignment — the idempotence compare above
    // still holds because both sides stay monostate.
    if (!v.is_token()) data_ = v;
    // The memory order must be a compile-time constant for the compiler to
    // drop the fence, hence the explicit branch on relaxed_.
    if (relaxed_) {
      enable_.store(enable, std::memory_order_relaxed);
    } else {
      enable_.store(enable, std::memory_order_seq_cst);
    }
    gen_fwd_.store(gen_fwd_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
    if (hooks_ != nullptr) hooks_->on_forward_resolved(*this);
    // A gated ack may have been waiting for the offer to become known.
    if (known(pending_intent_.load(std::memory_order_relaxed)) &&
        !ack_known()) {
      finish_backward(apply_gate(pending_intent_.load(
          std::memory_order_relaxed)));
    }
  }

  void resolve_backward_impl(Tristate intent) {
    const Tristate prev = intent_.load(std::memory_order_relaxed);
    if (known(prev)) {
      if (prev == intent) return;  // idempotent re-drive
      throw liberty::SimulationError(
          "non-monotone backward drive on connection " + describe());
    }
    intent_.store(intent, std::memory_order_relaxed);
    if (gate_ && asserted(intent) && !forward_known()) {
      // Defer until the offer is known.  Gated connections are co-scheduled
      // (producer and consumer share a cluster), so the producer's
      // resolve_forward cannot race this store.
      pending_intent_.store(intent, std::memory_order_relaxed);
      return;
    }
    finish_backward(apply_gate(intent));
  }

  [[nodiscard]] Tristate apply_gate(Tristate intent) const {
    if (gate_ && asserted(intent) && enabled()) {
      return to_tristate(gate_(data_));
    }
    return intent;
  }

  void finish_backward(Tristate final_ack) {
    pending_intent_.store(Tristate::Unknown, std::memory_order_relaxed);
    if (relaxed_) {
      ack_.store(final_ack, std::memory_order_relaxed);
    } else {
      ack_.store(final_ack, std::memory_order_seq_cst);
    }
    gen_bwd_.store(gen_bwd_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
    if (hooks_ != nullptr) hooks_->on_backward_resolved(*this);
  }

  /// Count a completed transfer (scheduler end-of-cycle, from the
  /// transferred-connection dirty list).
  void note_transfer() noexcept { ++transfers_; }

  /// Clear per-cycle channel state (scheduler end-of-cycle, single
  /// threaded).
  void reset_channels() noexcept {
    enable_.store(Tristate::Unknown, std::memory_order_relaxed);
    ack_.store(Tristate::Unknown, std::memory_order_relaxed);
    intent_.store(Tristate::Unknown, std::memory_order_relaxed);
    pending_intent_.store(Tristate::Unknown, std::memory_order_relaxed);
    if (!data_.is_token()) data_ = Value();
  }

  void note_defaulted() noexcept {
    defaulted_.fetch_add(1, std::memory_order_relaxed);
  }
  void set_hooks(ResolveHooks* h) noexcept { hooks_ = h; }
  void set_fault_hook(FaultHook* h) noexcept { fault_ = h; }
  /// Relaxed channel-state publication (see file comment).  Only a
  /// single-threaded scheduler may set this, and it must restore seq_cst
  /// on teardown (SchedulerBase::set_relaxed_resolution handles both).
  void set_relaxed(bool r) noexcept { relaxed_ = r; }

  ConnId id_;
  Module* producer_;
  Module* consumer_;
  std::string producer_ref_;
  std::string consumer_ref_;
  AckMode ack_mode_ = AckMode::AutoAccept;
  bool relaxed_ = false;
  TransferGate gate_;
  ResolveHooks* hooks_ = nullptr;
  FaultHook* fault_ = nullptr;

  std::atomic<Tristate> enable_{Tristate::Unknown};
  std::atomic<Tristate> ack_{Tristate::Unknown};
  std::atomic<Tristate> intent_{Tristate::Unknown};
  std::atomic<Tristate> pending_intent_{Tristate::Unknown};
  Value data_;

  std::uint64_t transfers_ = 0;
  std::atomic<std::uint64_t> defaulted_{0};
  std::atomic<std::uint32_t> gen_fwd_{0};
  std::atomic<std::uint32_t> gen_bwd_{0};
};

}  // namespace liberty::core
