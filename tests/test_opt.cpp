// The elaboration-time optimizer (liberty::opt): per-pass unit tests, the
// bit-identity oracle at -O1/-O2 across all schedulers, constants across
// snapshot/restore, and the annotated-DOT goldens.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "liberty/core/lss/elaborator.hpp"
#include "liberty/core/lss/parser.hpp"
#include "liberty/core/netlist.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/opt/optimizer.hpp"
#include "liberty/testing/netspec.hpp"
#include "liberty/testing/oracle.hpp"
#include "test_util.hpp"

#ifndef LIBERTY_REPO_ROOT
#error "LIBERTY_REPO_ROOT must point at the repository checkout"
#endif

namespace {

using liberty::Value;
using liberty::core::Connection;
using liberty::core::Cycle;
using liberty::core::Module;
using liberty::core::Netlist;
using liberty::core::OptPlan;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using liberty::opt::OptOptions;
using liberty::opt::OptReport;
using liberty::test::params;
using liberty::test::registry;
using liberty::testing::Candidate;
using liberty::testing::NetSpec;
using liberty::testing::OracleConfig;
using liberty::testing::OracleResult;
using liberty::testing::run_oracle;

Module& add(Netlist& nl, const std::string& type, const std::string& name,
            liberty::core::Params p = {}) {
  return nl.add(registry().instantiate(type, name, p));
}

liberty::core::Params token_tap() {
  return params({{"kind", Value(std::string("token"))},
                 {"period", Value(std::int64_t{1})}});
}

/// token source -> probe -> sink: everything is provably constant.
Netlist& build_const_line(Netlist& nl) {
  Module& src = add(nl, "pcl.source", "src", token_tap());
  Module& probe = add(nl, "pcl.probe", "p");
  Module& sink = add(nl, "pcl.sink", "snk");
  nl.connect(src.out("out"), probe.in("in"));
  nl.connect(probe.out("out"), sink.in("in"));
  nl.finalize();
  return nl;
}

std::uint64_t counter(Simulator& sim, const std::string& name) {
  std::uint64_t got = 0;
  sim.scheduler().visit_counters([&](std::string_view n, std::uint64_t v) {
    if (n == name) got = v;
  });
  return got;
}

// ---------------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------------

TEST(OptConst, LevelZeroAttachesNoPlan) {
  Netlist nl;
  build_const_line(nl);
  const OptReport rep = liberty::opt::optimize(nl, OptOptions::for_level(0));
  EXPECT_EQ(rep.level, 0);
  EXPECT_EQ(nl.opt_plan(), nullptr);
  EXPECT_NE(rep.summary().find("-O0"), std::string::npos);
}

TEST(OptConst, TokenTapPropagatesThroughPassThrough) {
  Netlist nl;
  build_const_line(nl);
  const OptReport rep = liberty::opt::optimize(nl);
  ASSERT_NE(nl.opt_plan(), nullptr);
  // Forward constants: src->probe (declared), probe->sink (pass-through).
  EXPECT_EQ(rep.const_forwards, 2u);
  // Backward constants: probe->sink ack (gate-free AutoAccept := enable),
  // then src->probe ack (pass-through ack chaining).
  EXPECT_EQ(rep.const_backwards, 2u);
  // Three channels actually pre-resolve per cycle: sending the const
  // forward on probe->sink fires the AutoAccept hook, which resolves that
  // connection's ack before apply_consts reaches the (redundant) backward
  // entry.  The probe never reacts either way.
  Simulator sim(nl, SchedulerKind::Dynamic);
  sim.run(50);
  EXPECT_EQ(counter(sim, "opt.pre_resolved"), 3u * 50u);
}

TEST(OptConst, WindowedOrStampedSourcesAreNotConstant) {
  Netlist nl;
  Module& src = add(nl, "pcl.source", "src",
                    params({{"kind", Value(std::string("token"))},
                            {"period", Value(std::int64_t{1})},
                            {"count", Value(std::int64_t{10})}}));
  Module& sink = add(nl, "pcl.sink", "snk");
  nl.connect(src.out("out"), sink.in("in"));
  nl.finalize();
  const OptReport rep = liberty::opt::optimize(nl);
  EXPECT_EQ(rep.const_forwards, 0u);
}

TEST(OptConst, PerPassFlagDisablesConstprop) {
  Netlist nl;
  build_const_line(nl);
  OptOptions opts;  // -O2 defaults
  opts.constprop = false;
  const OptReport rep = liberty::opt::optimize(nl, opts);
  EXPECT_EQ(rep.const_forwards, 0u);
  EXPECT_EQ(rep.const_backwards, 0u);
  ASSERT_NE(nl.opt_plan(), nullptr);  // other passes still attach a plan
}

TEST(OptConst, ConstantsSurviveSnapshotRestore) {
  Netlist nl;
  build_const_line(nl);
  liberty::opt::optimize(nl);
  Simulator sim(nl, SchedulerKind::Static);
  std::vector<std::string> trace;
  sim.observe_transfers([&trace](const Connection& c, Cycle cycle) {
    trace.push_back(std::to_string(cycle) + "#" + std::to_string(c.id()));
  });
  sim.run(40);
  const auto snap = sim.snapshot();
  trace.clear();
  sim.run(40);
  const std::vector<std::string> first = trace;
  sim.restore(snap);
  trace.clear();
  sim.run(40);
  EXPECT_EQ(first, trace) << "replay after restore diverged at -O2";
  EXPECT_EQ(first.size(), 2u * 40u);  // both connections transfer each cycle
}

// ---------------------------------------------------------------------------
// Dead-logic elision
// ---------------------------------------------------------------------------

TEST(OptDce, PureStatelessModuleWithConstDrivesIsElided) {
  Netlist nl;
  Module& src = add(nl, "pcl.source", "src", token_tap());
  Module& fm = add(nl, "pcl.funcmap", "f");
  nl.connect(src.out("out"), fm.in("in"));  // funcmap out left unconnected
  nl.finalize();
  const OptReport rep = liberty::opt::optimize(nl);
  ASSERT_NE(nl.opt_plan(), nullptr);
  EXPECT_EQ(rep.elided_modules, 1u);
  EXPECT_TRUE(nl.opt_plan()->module_elided(fm.id()));
  EXPECT_FALSE(nl.opt_plan()->module_elided(src.id()));
  // And the elided module really is skipped while behaviour is preserved.
  Simulator sim(nl, SchedulerKind::Dynamic);
  sim.run(30);
  EXPECT_EQ(counter(sim, "opt.elided_modules"), 1u);
}

TEST(OptDce, StatObservedModulesAreNeverElided) {
  // Identical topology but with a Probe: it counts items (stats), so it is
  // not pure and must keep running no matter how constant its channels are.
  Netlist nl;
  Module& src = add(nl, "pcl.source", "src", token_tap());
  Module& probe = add(nl, "pcl.probe", "p");
  nl.connect(src.out("out"), probe.in("in"));
  nl.finalize();
  const OptReport rep = liberty::opt::optimize(nl);
  EXPECT_EQ(rep.elided_modules, 0u);
  EXPECT_FALSE(nl.opt_plan() != nullptr &&
               nl.opt_plan()->module_elided(probe.id()));
}

TEST(OptDce, FlagDisablesElision) {
  Netlist nl;
  Module& src = add(nl, "pcl.source", "src", token_tap());
  add(nl, "pcl.funcmap", "f");
  nl.connect(src.out("out"), nl.modules()[1]->in("in"));
  nl.finalize();
  OptOptions opts;
  opts.dce = false;
  EXPECT_EQ(liberty::opt::optimize(nl, opts).elided_modules, 0u);
}

// ---------------------------------------------------------------------------
// Stateless-chain fusion
// ---------------------------------------------------------------------------

/// counter source -> probe -> funcmap -> probe -> sink.
NetSpec chain_netspec() {
  NetSpec spec;
  spec.modules.push_back({"pcl.source", "src",
                          params({{"kind", Value(std::string("counter"))},
                                  {"period", Value(std::int64_t{1})}})});
  spec.modules.push_back({"pcl.probe", "p0", {}});
  spec.modules.push_back({"pcl.funcmap", "f", {}});
  spec.modules.push_back({"pcl.probe", "p1", {}});
  spec.modules.push_back({"pcl.sink", "snk", {}});
  spec.edges = {{0, "out", 1, "in"},
                {1, "out", 2, "in"},
                {2, "out", 3, "in"},
                {3, "out", 4, "in"}};
  return spec;
}

TEST(OptFuse, MaximalChainIsFusedOnce) {
  Netlist nl;
  chain_netspec().build(nl, registry());
  const OptReport rep = liberty::opt::optimize(nl);
  ASSERT_EQ(rep.fused_chains, 1u);
  EXPECT_EQ(rep.fused_modules, 3u);
  const OptPlan* plan = nl.opt_plan();
  ASSERT_NE(plan, nullptr);
  const OptPlan::Chain& ch = plan->chains.front();
  ASSERT_EQ(ch.members.size(), 3u);
  ASSERT_EQ(ch.links.size(), 4u);
  ASSERT_EQ(ch.transforms.size(), 3u);
  EXPECT_EQ(ch.members.front()->name(), "p0");
  EXPECT_EQ(ch.members.back()->name(), "p1");
  for (const Module* m : ch.members) {
    EXPECT_EQ(plan->chain_of_module[m->id()], 0);
  }
  // Every interior link keeps its single producer/consumer endpoints: the
  // chain annotation never rewires ports.
  for (const Connection* link : ch.links) {
    EXPECT_NE(link->producer(), nullptr);
    EXPECT_NE(link->consumer(), nullptr);
  }
  // One fused sweep per direction per cycle.
  Simulator sim(nl, SchedulerKind::Dynamic);
  sim.run(25);
  EXPECT_EQ(counter(sim, "opt.fused_chains"), 1u);
  EXPECT_EQ(counter(sim, "opt.fwd_sweeps"), 25u);
  EXPECT_EQ(counter(sim, "opt.bwd_sweeps"), 25u);
}

TEST(OptFuse, TransferGateBlocksFusion) {
  // A control override (transfer gate) on the tail link must keep that
  // module unfused: the gate's deferred-ack protocol is not sweepable.
  Netlist nl;
  chain_netspec().build(nl, registry());
  nl.connections()[3]->set_transfer_gate([](const Value&) { return true; });
  const OptReport rep = liberty::opt::optimize(nl);
  // p0 and f still pair up (their links are gate-free); p1 cannot join.
  ASSERT_EQ(rep.fused_chains, 1u);
  EXPECT_EQ(rep.fused_modules, 2u);
  for (const OptPlan::Chain& ch : nl.opt_plan()->chains) {
    for (const Module* m : ch.members) EXPECT_NE(m->name(), "p1");
  }
}

TEST(OptFuse, PureRingIsNotFused) {
  Netlist nl;
  Module& a = add(nl, "pcl.probe", "a");
  Module& b = add(nl, "pcl.probe", "b");
  Module& c = add(nl, "pcl.probe", "c");
  nl.connect(a.out("out"), b.in("in"));
  nl.connect(b.out("out"), c.in("in"));
  nl.connect(c.out("out"), a.in("in"));
  nl.finalize();
  const OptReport rep = liberty::opt::optimize(nl);
  EXPECT_EQ(rep.fused_chains, 0u);
}

TEST(OptFuse, FanOutModulesAreNotFused) {
  // Tee preserves port widths > 1; it declares no pass-through and must
  // never appear in a chain.
  Netlist nl;
  Module& src = add(nl, "pcl.source", "src", token_tap());
  Module& tee = add(nl, "pcl.tee", "t");
  Module& s0 = add(nl, "pcl.sink", "s0");
  Module& s1 = add(nl, "pcl.sink", "s1");
  nl.connect(src.out("out"), tee.in("in"));
  nl.connect(tee.out("out"), s0.in("in"));
  nl.connect(tee.out("out"), s1.in("in"));
  nl.finalize();
  const OptReport rep = liberty::opt::optimize(nl);
  EXPECT_EQ(rep.fused_chains, 0u);
  EXPECT_EQ(nl.opt_plan()->chain_of_module[tee.id()], -1);
}

// ---------------------------------------------------------------------------
// Quiescence gating
// ---------------------------------------------------------------------------

/// Short burst, long idle tail: src (count=20) -> delay -> probe -> sink.
NetSpec burst_netspec() {
  NetSpec spec;
  spec.modules.push_back({"pcl.source", "src",
                          params({{"kind", Value(std::string("counter"))},
                                  {"period", Value(std::int64_t{1})},
                                  {"count", Value(std::int64_t{20})}})});
  spec.modules.push_back(
      {"pcl.delay", "d", params({{"latency", Value(std::int64_t{2})}})});
  spec.modules.push_back({"pcl.probe", "p", {}});
  spec.modules.push_back({"pcl.sink", "snk", {}});
  spec.edges = {{0, "out", 1, "in"}, {1, "out", 2, "in"}, {2, "out", 3, "in"}};
  spec.cycles = 400;
  return spec;
}

TEST(OptGate, IdleSccsSleepAndWakeOnTraffic) {
  for (const SchedulerKind kind :
       {SchedulerKind::Dynamic, SchedulerKind::Static,
        SchedulerKind::Parallel}) {
    Netlist nl;
    burst_netspec().build(nl, registry());
    const OptReport rep = liberty::opt::optimize(nl);
    EXPECT_TRUE(rep.gating);
    EXPECT_GE(rep.sleepable_modules, 3u);  // delay, probe, sink
    Simulator sim(nl, kind, /*threads=*/2);
    sim.run(400);
    EXPECT_GT(counter(sim, "opt.gated_sccs"), 0u) << (int)kind;
    EXPECT_GT(counter(sim, "opt.scc_sleeps"), 0u) << (int)kind;
    EXPECT_GT(counter(sim, "opt.eoc_skips"), 0u) << (int)kind;
    // The burst itself must still have flowed: 20 items into the sink.
    std::ostringstream stats;
    nl.dump_stats(stats);
    EXPECT_NE(stats.str().find("consumed"), std::string::npos);
  }
}

TEST(OptGate, FlagDisablesGating) {
  Netlist nl;
  burst_netspec().build(nl, registry());
  OptOptions opts;
  opts.gate = false;
  const OptReport rep = liberty::opt::optimize(nl, opts);
  EXPECT_FALSE(rep.gating);
  Simulator sim(nl, SchedulerKind::Static);
  sim.run(100);
  EXPECT_EQ(counter(sim, "opt.gated_sccs"), 0u);
  EXPECT_EQ(counter(sim, "opt.scc_sleeps"), 0u);
}

// ---------------------------------------------------------------------------
// Bit-identity: every optimized scheduler against the -O0 dynamic reference
// ---------------------------------------------------------------------------

std::vector<Candidate> optimized_battery() {
  return {Candidate{SchedulerKind::Dynamic, 0, 2},
          Candidate{SchedulerKind::Static, 0, 1},
          Candidate{SchedulerKind::Static, 0, 2},
          Candidate{SchedulerKind::Parallel, 1, 2},
          Candidate{SchedulerKind::Parallel, 4, 2},
          Candidate{SchedulerKind::Compiled, 0, 1},
          Candidate{SchedulerKind::Compiled, 0, 2}};
}

TEST(OptOracle, OptimizedSchedulersMatchUnoptimizedReference) {
  OracleConfig cfg;
  cfg.candidates = optimized_battery();
  for (const NetSpec& spec : {chain_netspec(), burst_netspec()}) {
    const OracleResult r = run_oracle(spec, registry(), cfg);
    EXPECT_TRUE(r.ok) << r.report() << spec.render();
  }
}

TEST(OptOracle, ConstLineMatchesUnderSnapshotBisectionConfig) {
  NetSpec spec;
  spec.modules.push_back({"pcl.source", "src", token_tap()});
  spec.modules.push_back({"pcl.probe", "p", {}});
  spec.modules.push_back({"pcl.sink", "snk", {}});
  spec.edges = {{0, "out", 1, "in"}, {1, "out", 2, "in"}};
  OracleConfig cfg;
  cfg.candidates = optimized_battery();
  cfg.snapshot_every = 8;  // exercise restore with constants frequently
  const OracleResult r = run_oracle(spec, registry(), cfg);
  EXPECT_TRUE(r.ok) << r.report();
}

// ---------------------------------------------------------------------------
// Annotated DOT goldens
// ---------------------------------------------------------------------------

bool updating() {
  const char* env = std::getenv("LIBERTY_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

void compare_or_update(const std::string& actual, const std::string& leaf) {
  const std::string path =
      std::string(LIBERTY_REPO_ROOT) + "/tests/golden/" + leaf;
  if (updating()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << path << " is missing; regenerate with LIBERTY_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "output of " << leaf << " drifted from its golden; if intentional, "
      << "rerun with LIBERTY_UPDATE_GOLDEN=1 and review the diff";
}

void elaborate_funnel(Netlist& nl) {
  const auto spec = liberty::core::lss::parse_file(
      std::string(LIBERTY_REPO_ROOT) + "/examples/specs/funnel.lss");
  liberty::core::lss::Elaborator elab(registry());
  elab.elaborate(spec, nl);
  nl.finalize();
}

TEST(OptDot, FunnelBeforeAndAfterO2MatchGoldens) {
  Netlist nl;
  elaborate_funnel(nl);
  std::ostringstream before;
  liberty::opt::write_annotated_dot(nl, before);
  // With no plan attached the annotated dump degrades to the plain
  // structural dump.
  std::ostringstream plain;
  nl.write_dot(plain);
  EXPECT_EQ(before.str(), plain.str());
  compare_or_update(before.str(), "funnel.O0.dot");

  liberty::opt::optimize(nl);
  std::ostringstream after;
  liberty::opt::write_annotated_dot(nl, after);
  compare_or_update(after.str(), "funnel.O2.dot");
}

TEST(OptDot, MixedNetlistShowsEveryAnnotation) {
  // token tap -> probe chain -> sink, plus an elided funcmap stub on its
  // own tap.
  Netlist nl;
  Module& src = add(nl, "pcl.source", "src", token_tap());
  Module& p0 = add(nl, "pcl.probe", "p0");
  Module& p1 = add(nl, "pcl.probe", "p1");
  Module& snk = add(nl, "pcl.sink", "snk");
  Module& src2 = add(nl, "pcl.source", "src2", token_tap());
  Module& dead = add(nl, "pcl.funcmap", "dead");
  nl.connect(src.out("out"), p0.in("in"));
  nl.connect(p0.out("out"), p1.in("in"));
  nl.connect(p1.out("out"), snk.in("in"));
  nl.connect(src2.out("out"), dead.in("in"));
  nl.finalize();
  liberty::opt::optimize(nl);
  std::ostringstream os;
  liberty::opt::write_annotated_dot(nl, os);
  compare_or_update(os.str(), "opt_mix.O2.dot");
}

}  // namespace
