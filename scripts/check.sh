#!/usr/bin/env bash
# One-command verification: build and test the release configuration, then
# the ASan+UBSan configuration (and ThreadSanitizer if requested).
#
#   scripts/check.sh            # release + asan-ubsan
#   scripts/check.sh --tsan     # additionally build tsan and run `ctest -L tsan`
#   scripts/check.sh --quick    # release only, skipping the `fuzz` label
#
# LIBERTY_NATIVE=1 configures the release build with the native codegen
# backend (-DLIBERTY_NATIVE_CODEGEN=ON) so the native smoke and the
# native test battery run instead of skipping.
#
# Exits non-zero on the first failing build or test.
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=0
quick=0
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    --quick) quick=1 ;;
    *) echo "usage: $0 [--tsan] [--quick]" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== release build ==="
native_flags=()
if [ "${LIBERTY_NATIVE:-0}" = "1" ]; then
  native_flags=(-DLIBERTY_NATIVE_CODEGEN=ON)
fi
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "${native_flags[@]}" >/dev/null
cmake --build build -j "$jobs"

# Observability smoke: a profiled run must produce parseable artifacts of
# the documented schema (docs/observability.md).
echo "=== profile smoke ==="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./build/examples/lss_run examples/specs/funnel.lss --cycles 200 \
  --profile="$smoke_dir/trace.json" --metrics="$smoke_dir/metrics.json" \
  --quiet >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$smoke_dir/trace.json" "$smoke_dir/metrics.json" <<'PY'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace.get("traceEvents")
assert isinstance(events, list) and events, "trace has no traceEvents"
assert all("ph" in e for e in events), "trace event missing ph"
metrics = json.load(open(sys.argv[2]))
assert metrics.get("schema") == "liberty.metrics", metrics.get("schema")
assert metrics.get("schema_version") == 1, metrics.get("schema_version")
for key in ("meta", "counters", "scalars", "summaries"):
    assert key in metrics, "metrics missing " + key
print("profile smoke ok: %d trace events, %d counters"
      % (len(events), len(metrics["counters"])))
PY
else
  echo "python3 not found; skipped JSON schema validation"
fi

# Optimizer golden-stats: every example spec must produce identical
# statistics at -O0 and at the default -O2 (docs/optimizer.md).  This is
# the cheap end of the bit-identity guarantee; the oracle and fuzz sweep
# prove it in depth over traces and state digests.
echo "=== optimizer -O0 vs -O2 stats ==="
for spec in examples/specs/*.lss; do
  ./build/examples/lss_run "$spec" --cycles 500 --opt-level 0 \
    | grep -v '^opt:' >"$smoke_dir/stats-o0.txt"
  ./build/examples/lss_run "$spec" --cycles 500 --opt-level 2 \
    | grep -v '^opt:' >"$smoke_dir/stats-o2.txt"
  if ! diff -u "$smoke_dir/stats-o0.txt" "$smoke_dir/stats-o2.txt"; then
    echo "optimizer changed observable stats on $spec" >&2
    exit 1
  fi
done
echo "optimizer stats identical on $(ls examples/specs/*.lss | wc -l) specs"

# Codegen smoke: the compiled backend must reproduce the dynamic
# scheduler's state digest on every example spec, and the disassembler
# must produce a listing (docs/codegen.md).  The oracle and fuzz sweep
# prove trace-level identity in depth; this is the fast end-to-end check.
echo "=== compiled vs dynamic digest ==="
for spec in examples/specs/*.lss; do
  dyn="$(./build/examples/lss_run "$spec" --cycles 500 --scheduler dyn \
    --digest --quiet | grep '^digest:')"
  comp="$(./build/examples/lss_run "$spec" --cycles 500 --scheduler compiled \
    --digest --quiet | grep '^digest:')"
  if [ "$dyn" != "$comp" ]; then
    echo "compiled scheduler diverged on $spec" >&2
    echo "  dynamic:  $dyn" >&2
    echo "  compiled: $comp" >&2
    exit 1
  fi
done
./build/examples/lss_run examples/specs/funnel.lss --dump-bytecode \
  | grep -q '== resolve ('
echo "compiled digests identical on $(ls examples/specs/*.lss | wc -l) specs"

# Native-codegen smoke: when the build carries the native backend, every
# example spec must land on the dynamic scheduler's digest under
# --scheduler native (whatever the emitter declines runs on the bytecode
# fallback, so the digest must match regardless), and --dump-native-src
# must write a translation unit for an eligible netlist.
echo "=== native vs dynamic digest ==="
if grep -q 'LIBERTY_NATIVE_CODEGEN:BOOL=ON' build/CMakeCache.txt; then
  export LIBERTY_NATIVE_CACHE_DIR="$smoke_dir/native-cache"
  for spec in examples/specs/*.lss; do
    dyn="$(./build/examples/lss_run "$spec" --cycles 500 --scheduler dyn \
      --digest --quiet | grep '^digest:')"
    nat="$(./build/examples/lss_run "$spec" --cycles 500 --scheduler native \
      --digest --quiet | grep '^digest:')"
    if [ "$dyn" != "$nat" ]; then
      echo "native scheduler diverged on $spec" >&2
      echo "  dynamic: $dyn" >&2
      echo "  native:  $nat" >&2
      exit 1
    fi
  done
  ./build/examples/lss_run examples/specs/pipeline.lss --cycles 10 \
    --scheduler native --dump-native-src "$smoke_dir/native.cpp" --quiet \
    >/dev/null
  grep -q 'ln_start' "$smoke_dir/native.cpp"
  unset LIBERTY_NATIVE_CACHE_DIR
  echo "native digests identical on $(ls examples/specs/*.lss | wc -l) specs"
else
  echo "skipped: build has LIBERTY_NATIVE_CODEGEN=OFF (set LIBERTY_NATIVE=1)"
fi

# Resilience smoke: inject -> detect -> roll back -> finish bit-identical
# (docs/resilience.md).  A drop_ack fault on the funnel's sink feed must be
# flagged by the watchdog (exit 1), and the rollback supervisor must mask
# it and finish with the exact fault-free trace and state digests.
echo "=== resilience smoke ==="
cat >"$smoke_dir/faults.json" <<'JSON'
{"schema":"liberty.faultplan","version":1,"seed":7,"faults":[
 {"class":"drop_ack","connection":13,"from_cycle":60}
]}
JSON
./build/examples/lss_run examples/specs/funnel.lss --cycles 200 \
  --digest --quiet >"$smoke_dir/clean.out"
clean_digest="$(grep '^digest:' "$smoke_dir/clean.out")"
if ./build/examples/lss_run examples/specs/funnel.lss --cycles 200 \
  --faults "$smoke_dir/faults.json" --watchdog --quiet \
  >"$smoke_dir/detect.out" 2>&1; then
  echo "watchdog failed to flag the injected fault" >&2
  exit 1
fi
grep -q 'protocol: kernel-owned ack disagrees' "$smoke_dir/detect.out"
./build/examples/lss_run examples/specs/funnel.lss --cycles 200 \
  --faults "$smoke_dir/faults.json" --watchdog --recover rollback \
  --checkpoint-every 32 --digest --quiet >"$smoke_dir/recover.out" 2>&1
grep -q 'rollback to checkpoint' "$smoke_dir/recover.out"
recovered_digest="$(grep '^digest:' "$smoke_dir/recover.out")"
if [ "$clean_digest" != "$recovered_digest" ]; then
  echo "rollback recovery diverged from the fault-free run:" >&2
  echo "  clean:     $clean_digest" >&2
  echo "  recovered: $recovered_digest" >&2
  exit 1
fi
echo "resilience smoke ok: detected, rolled back, $recovered_digest"

# Crash-recovery smoke: run with durable checkpoints, SIGKILL the process
# mid-run, resume from the newest checkpoint, and require the digest of an
# uninterrupted run — then tear the newest checkpoint and require the
# resume to skip it with a diagnostic and still land on the same digest
# (docs/resilience.md, "Durable checkpoints").
echo "=== crash-recovery smoke ==="
ck_dir="$smoke_dir/ckpts"
clean_run="$(./build/examples/lss_run examples/specs/pipeline.lss \
  --cycles 400 --digest --quiet | grep '^digest:')"
kill_status=0
./build/examples/lss_run examples/specs/pipeline.lss --cycles 400 \
  --checkpoint-dir "$ck_dir" --checkpoint-every 50 --kill-at 230 \
  --digest --quiet >/dev/null 2>&1 || kill_status=$?
if [ "$kill_status" -ne 137 ]; then
  echo "--kill-at 230 did not SIGKILL the run (exit $kill_status)" >&2
  exit 1
fi
resumed="$(./build/examples/lss_run examples/specs/pipeline.lss \
  --cycles 400 --checkpoint-dir "$ck_dir" --checkpoint-every 50 --resume \
  --digest --quiet 2>/dev/null | grep '^digest:')"
if [ "$clean_run" != "$resumed" ]; then
  echo "resumed run diverged from the uninterrupted run:" >&2
  echo "  clean:   $clean_run" >&2
  echo "  resumed: $resumed" >&2
  exit 1
fi
newest="$(ls "$ck_dir"/ckpt-*.lck | sort | tail -1)"
dd if=/dev/null of="$newest" bs=1 seek=21 2>/dev/null  # torn write
resumed2="$(./build/examples/lss_run examples/specs/pipeline.lss \
  --cycles 400 --checkpoint-dir "$ck_dir" --checkpoint-every 50 --resume \
  --digest --quiet 2>"$smoke_dir/resume2.err" | grep '^digest:')"
grep -q 'torn write' "$smoke_dir/resume2.err"
if [ "$clean_run" != "$resumed2" ]; then
  echo "resume after a torn newest checkpoint diverged:" >&2
  echo "  clean:   $clean_run" >&2
  echo "  resumed: $resumed2" >&2
  exit 1
fi
echo "crash-recovery smoke ok: killed at 230, resumed, $resumed"

# Rack-scenario smoke: the flagship full-system scenario (docs/scenarios.md)
# must land on identical trace + state digests under the dynamic and
# compiled schedulers, and its metrics export must carry the rack.*
# aggregates in the documented liberty.metrics schema.
echo "=== rack scenario smoke ==="
rack_args=(--cols 2 --rows 1 --cores 1 --no-ooo --requests 2 --cycles 3000
  --quiet --digest)
rack_dyn="$(./build/examples/rack_sim "${rack_args[@]}" --scheduler dyn \
  | grep '^digest:')"
rack_comp="$(./build/examples/rack_sim "${rack_args[@]}" --scheduler compiled \
  --metrics "$smoke_dir/rack-metrics.json" | grep '^digest:')"
if [ "$rack_dyn" != "$rack_comp" ]; then
  echo "rack scenario diverged between dynamic and compiled:" >&2
  echo "  dynamic:  $rack_dyn" >&2
  echo "  compiled: $rack_comp" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 - "$smoke_dir/rack-metrics.json" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
assert m.get("schema") == "liberty.metrics", m.get("schema")
assert m["counters"]["rack.requests_completed"] > 0, "no requests completed"
lat = m["summaries"]["rack.latency"]
for q in ("p50", "p95", "p99"):
    assert q in lat, "rack.latency missing " + q
for s in ("rack.throughput_rpkc", "rack.router_total_pj",
          "rack.peak_temperature_c"):
    assert s in m["scalars"], "missing scalar " + s
print("rack smoke ok: %d requests, p99=%g cycles"
      % (m["counters"]["rack.requests_completed"], lat["p99"]))
PY
fi
echo "rack scenario smoke ok: $rack_dyn"

echo "=== release tests ==="
if [ "$quick" -eq 1 ]; then
  ctest --test-dir build --output-on-failure -j "$jobs" -LE fuzz
  exit 0
fi
ctest --test-dir build --output-on-failure -j "$jobs"

echo "=== asan+ubsan build ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLIBERTY_SANITIZE=address+undefined >/dev/null
cmake --build build-asan -j "$jobs"
echo "=== asan+ubsan tests ==="
ctest --test-dir build-asan --output-on-failure -j "$jobs" -LE fuzz

if [ "$run_tsan" -eq 1 ]; then
  echo "=== tsan build ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLIBERTY_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs"
  echo "=== tsan tests (label: tsan) ==="
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L tsan
fi

echo "all checks passed"
