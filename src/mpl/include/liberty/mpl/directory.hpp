// Directory-based MSI coherence (§3.4: "point-to-point coherence
// transactions for scalable systems").
//
// DirCache instances and DirectoryCtl home nodes exchange CohMsg traffic
// point-to-point — through nil::FabricAdapter over any CCL fabric, or wired
// directly.  Homes can be interleaved across several nodes by line address.
//
// Protocol (full-map MSI, home-centric):
//   GetS:  U/S -> Data(S); M -> Fetch owner, collect WbData, Data(S).
//   GetX:  U -> Data(X); S -> Inv sharers, collect InvAcks, Data(X);
//          M -> Fetch owner (invalidating), collect WbData, Data(X).
//   Dirty eviction -> WbData to home (state U).  Shared evictions are
//   silent; a stale sharer simply InvAcks an Inv for a line it no longer
//   holds.
// The home serializes transactions per line: requests that hit a busy line
// wait on that line's queue.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"
#include "liberty/mpl/messages.hpp"
#include "liberty/upl/cache.hpp"

namespace liberty::mpl {

/// Address-to-home mapping shared by caches and directories.
struct HomeMap {
  std::size_t home0 = 0;      // node id of the first home
  std::size_t num_homes = 1;  // interleaving factor
  std::size_t stride = 1;     // node-id distance between homes
  std::size_t line_words = 4;

  [[nodiscard]] std::size_t home_of(std::uint64_t line) const {
    return home0 + ((line / line_words) % num_homes) * stride;
  }
};

/// The directory + memory at one home node.
///
/// Ports: msg_in (requests/acks from the fabric), msg_out (replies).
/// Parameters: id (node id), home0/num_homes/home_stride/line_words
/// (interleaving), latency (memory access).
///
/// Stats: gets, getx, fetches, invs, data_sent, queued.
class DirectoryCtl : public liberty::core::Module {
 public:
  DirectoryCtl(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  void poke(std::uint64_t addr, std::int64_t v) { store_[addr] = v; }
  [[nodiscard]] std::int64_t peek(std::uint64_t addr) const {
    const auto it = store_.find(addr);
    return it == store_.end() ? 0 : it->second;
  }

 private:
  enum class LineState : std::uint8_t { Uncached, Shared, Modified };

  struct DirEntry {
    LineState state = LineState::Uncached;
    std::set<std::size_t> sharers;
    std::size_t owner = 0;
  };

  struct Transaction {
    bool is_getx = false;
    std::size_t requester = 0;
    std::size_t pending_acks = 0;
    bool waiting_fetch = false;
  };

  void handle(const CohMsg& msg);
  void start_request(const CohMsg& msg);
  void finish_transaction(std::uint64_t line);
  void send(CohMsg::Type type, std::uint64_t line, std::size_t dst,
            std::vector<std::int64_t> words = {}, bool exclusive = false);
  [[nodiscard]] std::vector<std::int64_t> read_line(std::uint64_t line) const;

  liberty::core::Port& msg_in_;
  liberty::core::Port& msg_out_;
  std::size_t id_num_;
  HomeMap map_;
  std::uint64_t latency_;

  std::unordered_map<std::uint64_t, std::int64_t> store_;
  std::unordered_map<std::uint64_t, DirEntry> dir_;
  std::unordered_map<std::uint64_t, Transaction> busy_;
  std::unordered_map<std::uint64_t, std::deque<liberty::Value>> waiting_;
  std::deque<liberty::Value> outq_;
  std::deque<liberty::core::Cycle> out_ready_;
};

/// Coherent L1 speaking the directory protocol.
///
/// Ports: cpu_req/cpu_resp, msg_out (to fabric), msg_in (from fabric).
/// Parameters: id, sets, ways, line_words, hit_latency, plus the HomeMap
/// fields (home0/num_homes/home_stride).
///
/// Stats: hits, misses, upgrades, invalidations_rx, fetches_rx, writebacks.
class DirCache : public liberty::core::Module {
 public:
  DirCache(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

 private:
  static constexpr std::int64_t kShared = 1;
  static constexpr std::int64_t kModified = 2;

  struct Outstanding {
    liberty::Value cpu_req;
    std::uint64_t line = 0;
  };

  void handle_cpu(const liberty::Value& v);
  void handle_msg(const CohMsg& msg);
  void complete_locally(const liberty::Value& req_value);
  void send(CohMsg::Type type, std::uint64_t line, std::size_t dst,
            std::vector<std::int64_t> words = {}, bool exclusive = false);

  liberty::core::Port& cpu_req_;
  liberty::core::Port& cpu_resp_;
  liberty::core::Port& msg_out_;
  liberty::core::Port& msg_in_;

  std::size_t id_num_;
  upl::CacheModel model_;
  std::uint64_t hit_latency_;
  HomeMap map_;
  std::unordered_map<std::uint64_t, std::vector<std::int64_t>> data_;

  std::optional<Outstanding> miss_;
  std::deque<liberty::Value> outq_;
  std::deque<liberty::Value> respq_;
  std::deque<liberty::core::Cycle> resp_ready_;
};

}  // namespace liberty::mpl
