#include "liberty/resil/fault_plan.hpp"

#include <fstream>
#include <sstream>

#include "liberty/core/connection.hpp"
#include "liberty/core/netlist.hpp"
#include "liberty/obs/json.hpp"
#include "liberty/support/error.hpp"

namespace liberty::resil {

namespace {

// splitmix64: tiny deterministic generator for plan synthesis.  Not the
// simulation Rng — plans must be reproducible from their seed alone,
// independent of any module's random state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::string_view kClassNames[kFaultClassCount] = {
    "corrupt_data", "drop_enable",  "stuck_channel",   "drop_ack",
    "spurious_ack", "handler_throw", "torn_checkpoint", "checkpoint_enospc",
};

}  // namespace

std::string_view fault_class_name(FaultClass cls) noexcept {
  return kClassNames[static_cast<std::size_t>(cls)];
}

FaultClass fault_class_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kFaultClassCount; ++i) {
    if (kClassNames[i] == name) return static_cast<FaultClass>(i);
  }
  throw liberty::Error("unknown fault class '" + std::string(name) +
                       "' (expected corrupt_data|drop_enable|stuck_channel|"
                       "drop_ack|spurious_ack|handler_throw|torn_checkpoint|"
                       "checkpoint_enospc)");
}

std::string FaultSpec::describe() const {
  std::string s(fault_class_name(cls));
  if (cls == FaultClass::HandlerThrow) {
    s += " on module '" + module + "'";
  } else if (is_env_fault(cls)) {
    s += " on the checkpoint path";
  } else {
    s += " on connection " + std::to_string(connection);
  }
  s += " from cycle " + std::to_string(from_cycle);
  if (!scheduler.empty()) s += " (" + scheduler + " scheduler only)";
  if (masked) s += " [masked]";
  return s;
}

std::string FaultPlan::to_json() const {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("schema", kFaultPlanSchemaName);
  w.field("version", static_cast<std::uint64_t>(kFaultPlanSchemaVersion));
  w.field("seed", seed);
  w.begin_array("faults");
  for (const FaultSpec& f : faults) {
    w.begin_object();
    w.field("class", fault_class_name(f.cls));
    if (f.cls == FaultClass::HandlerThrow) {
      w.field("module", f.module);
    } else if (!is_env_fault(f.cls)) {
      w.field("connection", static_cast<std::uint64_t>(f.connection));
    }
    w.field("from_cycle", static_cast<std::uint64_t>(f.from_cycle));
    if (!f.scheduler.empty()) w.field("scheduler", f.scheduler);
    if (f.masked) w.field("masked", true);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

FaultPlan FaultPlan::from_json(const std::string& text) {
  const obs::JsonValue doc = obs::json_parse(text);
  if (!doc.is_object()) throw liberty::Error("fault plan: not a JSON object");
  const obs::JsonValue* schema = doc.get("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kFaultPlanSchemaName) {
    throw liberty::Error("fault plan: missing or wrong schema (expected \"" +
                         std::string(kFaultPlanSchemaName) + "\")");
  }
  const obs::JsonValue* version = doc.get("version");
  if (version == nullptr || !version->is_number() ||
      static_cast<int>(version->number) != kFaultPlanSchemaVersion) {
    throw liberty::Error("fault plan: unsupported schema version");
  }

  FaultPlan plan;
  if (const obs::JsonValue* seed = doc.get("seed");
      seed != nullptr && seed->is_number()) {
    plan.seed = static_cast<std::uint64_t>(seed->number);
  }
  const obs::JsonValue* faults = doc.get("faults");
  if (faults == nullptr || !faults->is_array()) {
    throw liberty::Error("fault plan: missing \"faults\" array");
  }
  for (const obs::JsonValue& jf : faults->array) {
    if (!jf.is_object()) {
      throw liberty::Error("fault plan: fault entry is not an object");
    }
    FaultSpec f;
    const obs::JsonValue* cls = jf.get("class");
    if (cls == nullptr || !cls->is_string()) {
      throw liberty::Error("fault plan: fault entry missing \"class\"");
    }
    f.cls = fault_class_from_name(cls->string);
    if (is_env_fault(f.cls)) {
      // Environment faults target the checkpoint path, not the netlist.
    } else if (f.cls == FaultClass::HandlerThrow) {
      const obs::JsonValue* mod = jf.get("module");
      if (mod == nullptr || !mod->is_string() || mod->string.empty()) {
        throw liberty::Error("fault plan: handler_throw requires \"module\"");
      }
      f.module = mod->string;
    } else {
      const obs::JsonValue* conn = jf.get("connection");
      if (conn == nullptr || !conn->is_number()) {
        throw liberty::Error("fault plan: " +
                             std::string(fault_class_name(f.cls)) +
                             " requires \"connection\"");
      }
      f.connection = static_cast<core::ConnId>(conn->number);
    }
    if (const obs::JsonValue* from = jf.get("from_cycle");
        from != nullptr && from->is_number()) {
      f.from_cycle = static_cast<core::Cycle>(from->number);
    }
    if (const obs::JsonValue* sched = jf.get("scheduler");
        sched != nullptr && sched->is_string()) {
      f.scheduler = sched->string;
    }
    if (const obs::JsonValue* masked = jf.get("masked");
        masked != nullptr && masked->kind == obs::JsonValue::Kind::Bool) {
      f.masked = masked->boolean;
    }
    plan.faults.push_back(std::move(f));
  }
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw liberty::Error("cannot open fault plan file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

FaultPlan FaultPlan::random(std::uint64_t seed, const core::Netlist& netlist,
                            core::Cycle horizon, std::size_t count) {
  if (netlist.connection_count() == 0) {
    throw liberty::Error("fault plan: netlist has no connections");
  }
  if (horizon == 0) horizon = 1;

  // drop_ack is only interesting (and watchdog-detectable) where the kernel
  // owns the ack: ungated AutoAccept connections.
  std::vector<core::ConnId> auto_accept;
  for (const auto& c : netlist.connections()) {
    if (c->ack_mode() == core::AckMode::AutoAccept &&
        !c->has_transfer_gate()) {
      auto_accept.push_back(c->id());
    }
  }

  FaultPlan plan;
  plan.seed = seed;
  std::uint64_t state = seed ^ 0x5eed5eedULL;
  for (std::size_t i = 0; i < count; ++i) {
    FaultSpec f;
    // Channel classes only: handler_throw needs a module name, which random
    // plans leave to callers who know which handlers are interesting.
    constexpr FaultClass kChannelClasses[] = {
        FaultClass::CorruptData, FaultClass::DropEnable,
        FaultClass::StuckChannel, FaultClass::DropAck,
        FaultClass::SpuriousAck};
    const std::uint64_t pick = splitmix64(state);
    f.cls = kChannelClasses[pick % 5];
    if (f.cls == FaultClass::DropAck && !auto_accept.empty()) {
      f.connection = auto_accept[splitmix64(state) % auto_accept.size()];
    } else {
      f.connection = static_cast<core::ConnId>(splitmix64(state) %
                                               netlist.connection_count());
    }
    f.from_cycle = static_cast<core::Cycle>(splitmix64(state) % horizon);
    plan.faults.push_back(std::move(f));
  }
  return plan;
}

}  // namespace liberty::resil
