// NetSpec: a rebuildable description of one netlist.
//
// The differential oracle needs to run the *same* system under several
// schedulers, and snapshot bisection needs to construct fresh simulators at
// will — but Netlist is neither copyable nor resettable.  NetSpec is the
// answer: a plain-data recipe (module declarations + connection edges) that
// elaborates a fresh, identical Netlist on demand through the shared
// ModuleRegistry, exactly the way the LSS elaborator would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/core/netlist.hpp"
#include "liberty/core/params.hpp"
#include "liberty/core/registry.hpp"
#include "liberty/core/types.hpp"

namespace liberty::testing {

struct ModuleDecl {
  std::string type;  // registry key, e.g. "pcl.queue"
  std::string name;  // instance name, unique within the spec
  liberty::core::Params params;
};

/// Endpoint index meaning "assign the next free endpoint" (Netlist::connect
/// order-dependent assignment, the default for fuzzed specs).
inline constexpr std::size_t kAnyEndpoint = static_cast<std::size_t>(-1);

/// One connection: output port `from_port` of module `from` to input port
/// `to_port` of module `to`.  By default endpoints are assigned in
/// declaration order (Netlist::connect picks the next free endpoint), so
/// edge order is part of the spec's identity.  Topologies whose modules
/// give endpoint indexes a directional meaning (e.g. ccl routers: 1 = east,
/// 4 = south) pin both sides explicitly instead (Netlist::connect_at).
struct EdgeDecl {
  std::size_t from = 0;
  std::string from_port;
  std::size_t to = 0;
  std::string to_port;
  std::size_t from_ep = kAnyEndpoint;
  std::size_t to_ep = kAnyEndpoint;
};

/// One memory-mapped I/O binding: module `device` (an core::MmioDevice)
/// mapped into the address decode of module `host` (a core::MmioHost) at
/// [base, base+size).  Resolved by dynamic_cast during build(), keeping
/// this layer ignorant of which concrete libraries implement the seam.
struct MmioDecl {
  std::size_t host = 0;
  std::size_t device = 0;
  std::uint64_t base = 0;
  std::uint64_t size = 0;
};

struct NetSpec {
  std::vector<ModuleDecl> modules;
  std::vector<EdgeDecl> edges;
  std::vector<MmioDecl> mmios;
  liberty::core::Cycle cycles = 200;  // suggested simulation length

  /// Elaborate into `netlist` (instantiate every module, connect every
  /// edge, finalize).  Throws ElaborationError on an invalid spec.
  void build(liberty::core::Netlist& netlist,
             const liberty::core::ModuleRegistry& registry) const;

  /// Human-readable rendering (failure reports, --print-spec).
  [[nodiscard]] std::string render() const;
};

}  // namespace liberty::testing
