// The differential harness under test: fuzzer determinism, oracle
// agreement on healthy schedulers, fault injection caught and bisected,
// and shrinking.  The 500-seed sweep lives in test_fuzz_stress.cpp under
// the `fuzz` CTest label.
#include <gtest/gtest.h>

#include <string>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/scheduler.hpp"
#include "liberty/resil/fault_plan.hpp"
#include "liberty/testing/fuzzer.hpp"
#include "liberty/testing/netspec.hpp"
#include "liberty/testing/oracle.hpp"
#include "liberty/testing/shrink.hpp"
#include "test_util.hpp"

namespace {

using liberty::Value;
using liberty::core::SchedulerKind;
using liberty::resil::FaultClass;
using liberty::resil::FaultPlan;
using liberty::resil::FaultSpec;
using liberty::test::params;
using liberty::test::registry;
using liberty::testing::FuzzConfig;
using liberty::testing::NetSpec;
using liberty::testing::OracleConfig;
using liberty::testing::OracleResult;
using liberty::testing::generate_netlist;
using liberty::testing::run_oracle;

/// Generated netlists may weave in CCL flit traffic, so the fuzz suites
/// elaborate against a registry with both catalogs.
liberty::core::ModuleRegistry& fuzz_registry() {
  static liberty::core::ModuleRegistry r = [] {
    liberty::core::ModuleRegistry reg;
    liberty::pcl::register_pcl(reg);
    liberty::ccl::register_ccl(reg);
    return reg;
  }();
  return r;
}

/// A resil fault plan that breaks exactly one scheduler kind: drop the ack
/// on `conn` from `cycle` onward, but only when simulating under
/// `scheduler`.  The dynamic reference stays healthy, so the oracle must
/// blame precisely that candidate.
FaultPlan scheduler_fault(const std::string& scheduler,
                          liberty::core::Cycle cycle,
                          liberty::core::ConnId conn) {
  FaultPlan plan;
  FaultSpec f;
  f.cls = FaultClass::DropAck;
  f.connection = conn;
  f.from_cycle = cycle;
  f.scheduler = scheduler;
  plan.faults.push_back(std::move(f));
  return plan;
}

/// src -> queue -> sink; transfers every cycle, never quiesces, so a fault
/// at any cycle has live traffic to corrupt.
NetSpec pipeline_spec() {
  NetSpec spec;
  spec.modules.push_back({"pcl.source", "src",
                          params({{"kind", Value(std::string("counter"))},
                                  {"period", Value(std::int64_t{1})}})});
  spec.modules.push_back(
      {"pcl.queue", "q", params({{"depth", Value(std::int64_t{3})}})});
  spec.modules.push_back({"pcl.sink", "snk", {}});
  spec.edges.push_back({0, "out", 1, "in"});   // conn 0
  spec.edges.push_back({1, "out", 2, "in"});   // conn 1: AutoAccept sink in
  return spec;
}

TEST(Fuzzer, GenerationIsDeterministic) {
  const FuzzConfig cfg;
  EXPECT_EQ(generate_netlist(7, cfg).render(), generate_netlist(7, cfg).render());
  EXPECT_NE(generate_netlist(1, cfg).render(), generate_netlist(2, cfg).render());
}

TEST(Fuzzer, GeneratedNetlistsElaborate) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const NetSpec spec = generate_netlist(seed, FuzzConfig{});
    liberty::core::Netlist netlist;
    ASSERT_NO_THROW(spec.build(netlist, fuzz_registry()))
        << "seed " << seed << "\n" << spec.render();
  }
}

TEST(Oracle, TwentyFiveSeedsAgree) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const NetSpec spec = generate_netlist(seed, FuzzConfig{});
    const OracleResult r = run_oracle(spec, fuzz_registry());
    EXPECT_TRUE(r.ok) << "seed " << seed << "\n"
                      << r.report() << spec.render();
  }
}

TEST(Oracle, ModuleMixVariantsAgree) {
  FuzzConfig lean;
  lean.use_arbiter = lean.use_tee = lean.use_crossbar = false;
  lean.use_mux = lean.use_buffer = false;
  FuzzConfig loopy;
  loopy.feedback_prob = 1.0;
  for (const FuzzConfig& cfg : {lean, loopy}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const NetSpec spec = generate_netlist(seed, cfg);
      const OracleResult r = run_oracle(spec, fuzz_registry());
      EXPECT_TRUE(r.ok) << "seed " << seed << "\n"
                        << r.report() << spec.render();
    }
  }
}

// The acceptance test for the whole harness: corrupt one scheduler from a
// known cycle and require the oracle to (a) notice, (b) blame the right
// candidate, and (c) bisect to exactly the first corrupted cycle via
// snapshot/restore replay.
TEST(Oracle, InjectedStaticFaultCaughtAndBisected) {
  const FaultPlan plan = scheduler_fault("static", 50, 1);
  OracleConfig cfg;
  cfg.fault_plan = &plan;
  const OracleResult r = run_oracle(pipeline_spec(), fuzz_registry(), cfg);
  ASSERT_FALSE(r.ok);
  ASSERT_EQ(r.divergences.size(), 1u) << r.report();
  const liberty::testing::Divergence& d = r.divergences.front();
  EXPECT_EQ(d.candidate.kind, SchedulerKind::Static);
  EXPECT_EQ(d.first_divergent_cycle, 50u) << d.detail;
  EXPECT_FALSE(d.modules.empty());
  EXPECT_NE(d.detail.find("cycle 50"), std::string::npos) << d.detail;
}

TEST(Oracle, InjectedParallelFaultBlamesEveryThreadCount) {
  const FaultPlan plan = scheduler_fault("parallel", 30, 1);
  OracleConfig cfg;
  cfg.fault_plan = &plan;
  const OracleResult r = run_oracle(pipeline_spec(), fuzz_registry(), cfg);
  ASSERT_FALSE(r.ok);
  // Default battery: static (healthy) + parallel x {1, 2, 8} (all faulty).
  ASSERT_EQ(r.divergences.size(), 3u) << r.report();
  for (const liberty::testing::Divergence& d : r.divergences) {
    EXPECT_EQ(d.candidate.kind, SchedulerKind::Parallel);
    EXPECT_EQ(d.first_divergent_cycle, 30u) << d.detail;
  }
}

TEST(Oracle, FaultOnFuzzedNetlistIsCaught) {
  // Same check on a generated topology: fault an early cycle (fuzzed
  // netlists may legitimately quiesce later) on the final connection,
  // which lands on a sink.
  const NetSpec spec = generate_netlist(1, FuzzConfig{});
  const auto conn =
      static_cast<liberty::core::ConnId>(spec.edges.size() - 1);
  const FaultPlan plan = scheduler_fault("static", 5, conn);
  OracleConfig cfg;
  cfg.fault_plan = &plan;
  const OracleResult r = run_oracle(spec, fuzz_registry(), cfg);
  ASSERT_FALSE(r.ok) << "fault on conn " << conn << " went unnoticed";
  EXPECT_GE(r.divergences.front().first_divergent_cycle, 5u);
}

/// src -> probe -> queue -> sink; the probe is splice-able, everything
/// else droppable (modulo port minimums).
NetSpec chain_spec() {
  NetSpec spec = pipeline_spec();
  spec.modules.insert(spec.modules.begin() + 1,
                      liberty::testing::ModuleDecl{"pcl.probe", "p", {}});
  spec.edges = {{0, "out", 1, "in"},    // conn 0: src -> probe
                {1, "out", 2, "in"},    // conn 1: probe -> queue
                {2, "out", 3, "in"}};   // conn 2: queue -> sink (AutoAccept)
  return spec;
}

TEST(Shrink, ReducesToMinimalUnderCustomPredicate) {
  const NetSpec spec = chain_spec();
  // "Failure" = the spec still contains a queue.  Everything else should
  // shrink away: the probe by splicing, source and sink by removal.
  const auto has_queue = [](const NetSpec& s) {
    for (const auto& m : s.modules) {
      if (m.type == "pcl.queue") return true;
    }
    return false;
  };
  liberty::testing::ShrinkStats st;
  const NetSpec reduced =
      liberty::testing::shrink_netlist(spec, registry(), {}, &st, has_queue);
  ASSERT_EQ(reduced.modules.size(), 1u) << reduced.render();
  EXPECT_EQ(reduced.modules.front().type, "pcl.queue");
  EXPECT_TRUE(reduced.edges.empty());
  EXPECT_LE(reduced.cycles, 8u);
  EXPECT_GT(st.attempts, 0u);
  EXPECT_GE(st.attempts, st.accepted);
}

TEST(Shrink, NeverReturnsAPassingSpec) {
  // With a real injected fault the shrinker must preserve "still fails":
  // removing modules renumbers connections away from the faulted id, so
  // every structural candidate passes the oracle and must be rejected —
  // only the cycle budget can legally shrink.
  const NetSpec spec = chain_spec();
  const FaultPlan plan = scheduler_fault("static", 0, 2);
  OracleConfig cfg;
  cfg.fault_plan = &plan;
  ASSERT_FALSE(run_oracle(spec, fuzz_registry(), cfg).ok);

  const NetSpec reduced =
      liberty::testing::shrink_netlist(spec, fuzz_registry(), cfg);
  EXPECT_FALSE(run_oracle(reduced, fuzz_registry(), cfg).ok)
      << reduced.render();
  EXPECT_EQ(reduced.modules.size(), spec.modules.size());
  EXPECT_LT(reduced.cycles, spec.cycles);
}

}  // namespace
