// Native codegen stubs for -DLIBERTY_NATIVE_CODEGEN=OFF builds: the
// public surface stays linkable (front ends parse flags and call
// register_native_scheduler unconditionally), the backend simply never
// engages, and SchedulerKind::Native degrades to the compiled bytecode
// scheduler inside Simulator (see core/simulator.hpp).
#include "liberty/gen/native.hpp"

namespace liberty::gen {

bool native_available() noexcept { return false; }

void register_native_scheduler() {}

}  // namespace liberty::gen
