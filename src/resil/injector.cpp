#include "liberty/resil/injector.hpp"

#include <limits>

#include "liberty/core/connection.hpp"
#include "liberty/core/netlist.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/core/state.hpp"
#include "liberty/support/error.hpp"

namespace liberty::resil {

namespace {
constexpr std::uint64_t kNeverApplied =
    std::numeric_limits<std::uint64_t>::max();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  const std::size_t n = plan_.faults.size();
  applications_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  first_cycle_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (std::size_t i = 0; i < n; ++i) {
    applications_[i].store(0, std::memory_order_relaxed);
    first_cycle_[i].store(kNeverApplied, std::memory_order_relaxed);
  }
}

void FaultInjector::install(core::Simulator& sim) {
  sched_kind_ = std::string(sim.scheduler().kind_name());
  conn_count_ = sim.netlist().connection_count();
  for (const FaultSpec& f : plan_.faults) {
    if (is_channel_fault(f.cls) && f.connection >= conn_count_) {
      throw liberty::Error("fault plan: " + f.describe() +
                           " targets a connection outside this netlist (" +
                           std::to_string(conn_count_) + " connections)");
    }
    if (f.cls == FaultClass::HandlerThrow &&
        sim.netlist().find(f.module) == nullptr) {
      throw liberty::Error("fault plan: " + f.describe() +
                           " targets an unknown module");
    }
  }
  rebuild_tables();
  sim.set_fault_hook(this);
}

void FaultInjector::rebuild_tables() {
  fwd_spec_.assign(conn_count_, -1);
  bwd_spec_.assign(conn_count_, -1);
  handler_specs_.clear();
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& f = plan_.faults[i];
    if (f.masked) continue;
    if (!f.scheduler.empty() && f.scheduler != sched_kind_) continue;
    const auto idx = static_cast<std::int32_t>(i);
    switch (f.cls) {
      case FaultClass::CorruptData:
      case FaultClass::DropEnable:
      case FaultClass::StuckChannel:
        if (fwd_spec_[f.connection] < 0) fwd_spec_[f.connection] = idx;
        break;
      case FaultClass::DropAck:
      case FaultClass::SpuriousAck:
        if (bwd_spec_[f.connection] < 0) bwd_spec_[f.connection] = idx;
        break;
      case FaultClass::HandlerThrow:
        handler_specs_.push_back(idx);
        break;
      case FaultClass::TornCheckpoint:
      case FaultClass::CheckpointEnospc:
        // Environment faults have no kernel-seam dispatch entry; the
        // DurableSupervisor polls them via env_fault_fires.
        break;
    }
  }
}

void FaultInjector::note_applied(std::int32_t spec_index) {
  note_applied_at(spec_index, cycle_);
}

void FaultInjector::note_applied_at(std::int32_t spec_index,
                                    core::Cycle cycle) {
  applications_[spec_index].fetch_add(1, std::memory_order_relaxed);
  auto& first = first_cycle_[spec_index];
  std::uint64_t prev = first.load(std::memory_order_relaxed);
  const auto cyc = static_cast<std::uint64_t>(cycle);
  while (cyc < prev &&
         !first.compare_exchange_weak(prev, cyc, std::memory_order_relaxed)) {
  }
}

bool FaultInjector::env_fault_fires(FaultClass cls, core::Cycle cycle) {
  bool fires = false;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& f = plan_.faults[i];
    if (f.cls != cls || f.masked || cycle < f.from_cycle) continue;
    if (!f.scheduler.empty() && f.scheduler != sched_kind_) continue;
    note_applied_at(static_cast<std::int32_t>(i), cycle);
    fires = true;
  }
  return fires;
}

Value FaultInjector::substitute(core::ConnId conn, core::Cycle cycle) const {
  // Deterministic corrupted payload: a pure hash of (seed, connection,
  // cycle), reduced to a non-negative int64 so downstream value printing
  // and hashing behave everywhere.
  std::uint64_t h = core::kFnv1aInit;
  h = core::fnv1a_mix(h, plan_.seed);
  h = core::fnv1a_mix(h, static_cast<std::uint64_t>(conn) + 1);
  h = core::fnv1a_mix(h, static_cast<std::uint64_t>(cycle) + 1);
  return Value(static_cast<std::int64_t>(h & 0x7fffffffffffffffULL));
}

void FaultInjector::begin_cycle(core::Cycle cycle) {
  cycle_ = cycle;
  for (const std::int32_t i : handler_specs_) {
    const FaultSpec& f = plan_.faults[i];
    if (cycle < f.from_cycle) continue;
    note_applied(i);
    throw liberty::SimulationError(
        "injected handler fault: module '" + f.module +
        "' failed at cycle " + std::to_string(cycle));
  }
}

void FaultInjector::filter_forward(const core::Connection& c, Tristate& enable,
                                   Value& data) {
  const core::ConnId id = c.id();
  if (id >= fwd_spec_.size()) return;
  const std::int32_t si = fwd_spec_[id];
  if (si < 0) return;
  const FaultSpec& f = plan_.faults[si];
  if (cycle_ < f.from_cycle) return;
  switch (f.cls) {
    case FaultClass::CorruptData:
      if (asserted(enable)) {
        data = substitute(id, cycle_);
        note_applied(si);
      }
      break;
    case FaultClass::DropEnable:
      if (asserted(enable)) {
        enable = Tristate::Negated;
        data = Value();
        note_applied(si);
      }
      break;
    case FaultClass::StuckChannel:
      // Payload wedged at one fixed value (cycle 0 in the hash makes the
      // substitute constant per connection).  Only offered cycles are
      // perturbed: fabricating an offer the producer never made would
      // break the producer's view of its own handshake (modules pop
      // buffers keyed on transferred()), which faults must not do — see
      // fault.hpp "Module-safety contract".
      if (asserted(enable)) {
        data = substitute(id, 0);
        note_applied(si);
      }
      break;
    default:
      break;
  }
}

void FaultInjector::filter_backward(const core::Connection& c,
                                    Tristate& ack) {
  const core::ConnId id = c.id();
  if (id >= bwd_spec_.size()) return;
  const std::int32_t si = bwd_spec_[id];
  if (si < 0) return;
  const FaultSpec& f = plan_.faults[si];
  if (cycle_ < f.from_cycle) return;
  if (f.cls == FaultClass::DropAck) {
    ack = Tristate::Negated;
  } else {
    ack = Tristate::Asserted;
  }
  note_applied(si);
}

int FaultInjector::mask_through(core::Cycle cycle) {
  int masked = 0;
  for (FaultSpec& f : plan_.faults) {
    if (!f.masked && f.from_cycle <= cycle) {
      f.masked = true;
      ++masked;
    }
  }
  if (masked > 0) rebuild_tables();
  return masked;
}

int FaultInjector::mask_module(const std::string& name) {
  int masked = 0;
  for (FaultSpec& f : plan_.faults) {
    if (!f.masked && f.cls == FaultClass::HandlerThrow && f.module == name) {
      f.masked = true;
      ++masked;
    }
  }
  if (masked > 0) rebuild_tables();
  return masked;
}

int FaultInjector::mask_connection(core::ConnId id) {
  int masked = 0;
  for (FaultSpec& f : plan_.faults) {
    if (!f.masked && is_channel_fault(f.cls) && f.connection == id) {
      f.masked = true;
      ++masked;
    }
  }
  if (masked > 0) rebuild_tables();
  return masked;
}

std::vector<InjectionSite> FaultInjector::sites() const {
  std::vector<InjectionSite> out;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const std::uint64_t apps = applications_[i].load(std::memory_order_relaxed);
    if (apps == 0) continue;
    const FaultSpec& f = plan_.faults[i];
    InjectionSite site;
    site.cls = f.cls;
    site.connection = f.connection;
    site.module = f.module;
    site.first_cycle = static_cast<core::Cycle>(
        first_cycle_[i].load(std::memory_order_relaxed));
    site.applications = apps;
    out.push_back(std::move(site));
  }
  return out;
}

}  // namespace liberty::resil
