// Trace-driven workload endpoints of the rack scenario.
//
// Both modules are *hosts* in the NIL's sense: they touch the world only
// through a pcl::MemReq port into the node's host memory, exactly like the
// device driver of a real machine.  TraceSource plays the send side of the
// driver (fill a payload buffer, post a TX descriptor); TraceSink plays
// the receive side (pre-arm RX buffers, reap filled descriptors).  The
// programmable NIC between them — firmware core, DMA assist, fabric
// adapter — is the production nil/ccl stack, not a test double, which is
// what makes the rack a macro-benchmark of the whole system.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"
#include "liberty/scenario/trace.hpp"

namespace liberty::scenario {

/// Replays the `src == node` slice of a trace into the node's TX ring.
///
/// Ports: host_req (out, pcl::MemReq), host_resp (in).
/// Parameters:
///   node          this node's id (selects the trace slice)        [0]
///   trace         trace text (see trace.hpp), embedded verbatim   [""]
///   tx_ring       host address of the TX descriptor ring          [8192]
///   ring_entries  descriptors in the ring                         [8]
///   payload_base  first payload staging buffer                    [4096]
///   slot_stride   words between staging buffers                   [64]
///
/// One host-memory word is read or written per transaction, one
/// transaction in flight at a time: poll the next descriptor's status
/// (free = 0 or completed = 2), write the payload words (word 0 = request
/// id, word 1 = current cycle = birth stamp, rest a deterministic fill),
/// then the descriptor's addr/len/dst, and finally status = 1 (ready),
/// which hands the request to the NIC firmware.
///
/// Stats: injected, poll_retries.
class TraceSource : public liberty::core::Module {
 public:
  TraceSource(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  /// Requests fully handed to the NIC so far.
  [[nodiscard]] std::uint64_t injected() const noexcept { return injected_; }
  /// Every request injected and no transaction in flight.
  [[nodiscard]] bool drained() const noexcept {
    return next_ >= reqs_.size() && !op_;
  }

 private:
  enum class Phase : std::uint8_t {
    Idle,      // waiting for the next request's cycle
    Poll,      // reading the descriptor status
    Payload,   // writing payload word `word_`
    DescAddr,  // writing descriptor word 0 (payload address)
    DescLen,   // word 1 (payload length)
    DescDst,   // word 3 (destination MAC = node id)
    DescGo,    // word 2 (status = 1: ready)
  };

  /// The single in-flight host-memory transaction.
  struct Flight {
    liberty::Value req;
    bool sent = false;
  };

  void issue_read(std::uint64_t addr);
  void issue_write(std::uint64_t addr, std::int64_t data);
  void maybe_start();
  void advance(std::int64_t resp_data);
  [[nodiscard]] std::uint64_t desc_addr() const {
    return tx_ring_ + slot_ * 4;
  }
  [[nodiscard]] std::uint64_t payload_addr() const {
    return payload_base_ + slot_ * slot_stride_;
  }
  [[nodiscard]] std::int64_t payload_word(std::size_t k) const;

  liberty::core::Port& host_req_;
  liberty::core::Port& host_resp_;

  std::size_t node_;
  std::uint64_t tx_ring_;
  std::uint64_t entries_;
  std::uint64_t payload_base_;
  std::uint64_t slot_stride_;
  std::vector<TraceRequest> reqs_;  // this node's slice, injection order

  Phase phase_ = Phase::Idle;
  std::size_t next_ = 0;   // index into reqs_
  std::uint64_t slot_ = 0;  // TX ring slot for the current request
  std::size_t word_ = 0;   // payload word being written
  std::uint64_t born_ = 0;  // birth stamp of the current request
  std::optional<Flight> op_;
  std::uint64_t injected_ = 0;
  std::uint64_t next_tag_ = 1;
};

/// Reaps the node's RX ring and records per-request end-to-end latency.
///
/// Ports: host_req (out, pcl::MemReq), host_resp (in).
/// Parameters:
///   node           this node's id                                  [0]
///   rx_ring        host address of the RX descriptor ring          [8448]
///   ring_entries   descriptors in the ring                         [8]
///   buf_base       first receive buffer                            [6144]
///   slot_stride    words between receive buffers                   [64]
///   latency_buckets / latency_bucket_width   histogram shape       [64/32]
///
/// First arms every descriptor (buffer address, status = 1), then scans
/// the ring round-robin: a status of 2 means the firmware scattered a
/// frame — read its length, source, and payload, record
/// {id, src, born, done} with done = the cycle the completion was
/// observed, and re-arm the slot.
///
/// Stats: completed, latency (histogram), latency_cycles (accumulator).
class TraceSink : public liberty::core::Module {
 public:
  /// One reaped request.  `born` comes from payload word 1 (stamped by the
  /// TraceSource), so done - born spans source staging, firmware, DMA,
  /// both fabrics, and sink reaping.
  struct Record {
    std::uint64_t id = 0;
    std::uint64_t src = 0;
    std::uint64_t born = 0;
    std::uint64_t done = 0;
    std::size_t words = 0;
  };

  TraceSink(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return records_.size();
  }
  /// Byte-stable rendering of the record list; the replay-determinism
  /// tests compare these strings across runs and schedulers.
  [[nodiscard]] std::string render_records() const;

 private:
  enum class Phase : std::uint8_t {
    ArmAddr,   // initial arming: writing descriptor word 0
    ArmStatus,  // initial arming: writing status = 1
    Poll,      // reading descriptor status of slot_
    ReadLen,   // reading descriptor word 1
    ReadSrc,   // reading descriptor word 3
    ReadWord,  // reading payload word word_
    Rearm,     // writing status = 1 after reaping
  };

  struct Flight {
    liberty::Value req;
    bool sent = false;
  };

  void issue_read(std::uint64_t addr);
  void issue_write(std::uint64_t addr, std::int64_t data);
  void advance(std::int64_t resp_data);
  void finish_record();
  [[nodiscard]] std::uint64_t desc_addr() const {
    return rx_ring_ + slot_ * 4;
  }
  [[nodiscard]] std::uint64_t buf_addr() const {
    return buf_base_ + slot_ * slot_stride_;
  }

  liberty::core::Port& host_req_;
  liberty::core::Port& host_resp_;

  std::size_t node_;
  std::uint64_t rx_ring_;
  std::uint64_t entries_;
  std::uint64_t buf_base_;
  std::uint64_t slot_stride_;
  std::size_t latency_buckets_;
  double latency_bucket_width_;

  Phase phase_ = Phase::ArmAddr;
  std::uint64_t slot_ = 0;
  std::size_t word_ = 0;
  std::uint64_t len_ = 0;   // payload length of the frame being reaped
  std::uint64_t src_ = 0;   // its source MAC
  std::uint64_t seen_ = 0;  // cycle its completion was observed
  std::vector<std::int64_t> buf_;  // payload words read so far
  std::optional<Flight> op_;
  std::vector<Record> records_;
  std::uint64_t next_tag_ = 1;
};

}  // namespace liberty::scenario
