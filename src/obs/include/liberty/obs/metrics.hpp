// MetricsRegistry: one machine-readable home for every number a run
// produces.
//
// Before this subsystem existed the only reporting path was
// Netlist::dump_stats — free-text, per-module, nothing about the kernel.
// The registry federates three sources behind stable, namespaced metric
// names:
//
//   module.<instance>.<stat>     every module's StatSet (counters,
//                                accumulators, histograms with quantiles)
//   scheduler.<counter>          SchedulerBase::visit_counters — worklist
//                                pushes, fixed-point passes, wave counts...
//   profile.<...>                CycleProfiler aggregates (phase seconds,
//                                per-module react time, lane busy/idle)
//
// and exports them as a versioned JSON document (schema
// "liberty.metrics", kMetricsSchemaVersion) or flat CSV, both carrying
// run metadata (spec, scheduler, threads, seed, git revision) so that
// artifacts from different runs are comparable without side channels.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "liberty/core/netlist.hpp"
#include "liberty/core/scheduler.hpp"

namespace liberty::obs {

inline constexpr int kMetricsSchemaVersion = 1;
inline constexpr const char* kMetricsSchemaName = "liberty.metrics";

/// Identifying metadata stamped into every export.
struct RunMeta {
  std::string tool;       // producing binary, e.g. "lss_run"
  std::string spec;       // model identity: spec path, bench name, seed tag
  std::string scheduler;  // kind_name() of the scheduler used
  unsigned threads = 0;   // parallel worker count (0 = n/a)
  std::uint64_t seed = 0;
  std::uint64_t cycles = 0;  // cycles simulated
  std::string git_rev;       // source revision, "unknown" when undetectable
};

/// Best-effort current source revision (git rev-parse); "unknown" offline.
[[nodiscard]] std::string current_git_rev();

class CycleProfiler;

class MetricsRegistry {
 public:
  struct Summary {
    std::uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    // Histogram-only quantiles (accumulators leave them at 0 and set
    // has_quantiles = false).
    bool has_quantiles = false;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  void add_counter(const std::string& name, std::uint64_t value) {
    counters_[name] = value;
  }
  void add_scalar(const std::string& name, double value) {
    scalars_[name] = value;
  }
  void add_summary(const std::string& name, const Summary& s) {
    summaries_[name] = s;
  }

  /// Federate every module's StatSet under "module.<instance>.".
  void collect_modules(const liberty::core::Netlist& netlist);
  /// Kernel introspection counters under "scheduler.".
  void collect_scheduler(const liberty::core::SchedulerBase& sched);
  /// Profiler aggregates under "profile." (module names resolved through
  /// `netlist` when provided).
  void collect_profile(const CycleProfiler& prof,
                       const liberty::core::Netlist* netlist = nullptr);

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& scalars()
      const noexcept {
    return scalars_;
  }
  [[nodiscard]] const std::map<std::string, Summary>& summaries()
      const noexcept {
    return summaries_;
  }

  /// Versioned JSON document (see docs/observability.md for the schema).
  void write_json(std::ostream& os, const RunMeta& meta) const;
  /// Flat CSV: section,name,field,value with meta.* rows first.
  void write_csv(std::ostream& os, const RunMeta& meta) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> scalars_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace liberty::obs
