// Exception hierarchy for the Liberty Simulation Environment reproduction.
//
// Errors are partitioned by the phase that raises them so that callers (and
// tests) can distinguish a malformed specification from a bug observed while
// the constructed simulator is running.
#pragma once

#include <stdexcept>
#include <string>

namespace liberty {

/// Base class of all errors thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised while lexing/parsing a Liberty Simulator Specification (LSS).
class SpecError : public Error {
 public:
  SpecError(std::string file, int line, int col, const std::string& msg)
      : Error(file + ":" + std::to_string(line) + ":" + std::to_string(col) +
              ": " + msg),
        file_(std::move(file)),
        line_(line),
        col_(col) {}

  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return col_; }

 private:
  std::string file_;
  int line_ = 0;
  int col_ = 0;
};

/// Raised while elaborating a specification into a netlist (unknown module
/// template, bad parameter, port arity mismatch, ...).
class ElaborationError : public Error {
 public:
  using Error::Error;
};

/// Raised by the running simulator (non-monotone signal drive, value type
/// mismatch inside a module, ...).
class SimulationError : public Error {
 public:
  using Error::Error;
};

}  // namespace liberty
