# Empty dependencies file for test_ccl_wormhole.
# This may be replaced when dependencies are built.
