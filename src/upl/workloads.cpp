#include "liberty/upl/workloads.hpp"

#include <string>

namespace liberty::upl::workloads {

namespace {
std::string num(int v) { return std::to_string(v); }
}  // namespace

std::string sum_loop(int n) {
  return "  li r1, 0\n"
         "  li r2, 1\n"
         "  li r3, " + num(n) + "\n"
         "loop:\n"
         "  add r1, r1, r2\n"
         "  addi r2, r2, 1\n"
         "  bge r3, r2, loop\n"
         "  out r1\n"
         "  halt\n";
}

std::string fibonacci(int n) {
  return "  li r1, 0\n"
         "  li r2, 1\n"
         "  li r3, " + num(n) + "\n"
         "  li r4, 0\n"
         "  beq r3, r4, done\n"
         "loop:\n"
         "  add r5, r1, r2\n"
         "  mv r1, r2\n"
         "  mv r2, r5\n"
         "  addi r4, r4, 1\n"
         "  blt r4, r3, loop\n"
         "done:\n"
         "  out r1\n"
         "  halt\n";
}

std::string array_sum(int n) {
  return "  li r1, 0\n"
         "  li r2, " + num(n) + "\n"
         "  li r3, 100\n"
         "init:\n"
         "  add r4, r3, r1\n"
         "  sw r1, 0(r4)\n"
         "  addi r1, r1, 1\n"
         "  blt r1, r2, init\n"
         "  li r1, 0\n"
         "  li r5, 0\n"
         "sum:\n"
         "  add r4, r3, r1\n"
         "  lw r6, 0(r4)\n"
         "  add r5, r5, r6\n"
         "  addi r1, r1, 1\n"
         "  blt r1, r2, sum\n"
         "  out r5\n"
         "  halt\n";
}

std::string pointer_chase(int n, int stride, int steps) {
  return "  li r1, 0\n"
         "  li r2, " + num(n) + "\n"
         "  li r3, " + num(stride) + "\n"
         "  li r4, 4096\n"
         "build:\n"
         "  mul r5, r1, r3\n"
         "  add r5, r5, r4\n"
         "  addi r6, r1, 1\n"
         "  blt r6, r2, nomod\n"
         "  li r6, 0\n"
         "nomod:\n"
         "  mul r7, r6, r3\n"
         "  add r7, r7, r4\n"
         "  sw r7, 0(r5)\n"
         "  addi r1, r1, 1\n"
         "  blt r1, r2, build\n"
         "  mv r8, r4\n"
         "  li r9, 0\n"
         "  li r10, " + num(steps) + "\n"
         "walk:\n"
         "  lw r8, 0(r8)\n"
         "  addi r9, r9, 1\n"
         "  blt r9, r10, walk\n"
         "  out r8\n"
         "  halt\n";
}

std::string matmul(int size) {
  return "  li r4, " + num(size) + "\n"
         // Initialize A[i][j] = i + j (base 1000), B[i][j] = i - j (2000).
         "  li r1, 0\n"
         "ai:\n"
         "  li r2, 0\n"
         "aj:\n"
         "  mul r6, r1, r4\n"
         "  add r6, r6, r2\n"
         "  add r7, r1, r2\n"
         "  addi r8, r6, 1000\n"
         "  sw r7, 0(r8)\n"
         "  sub r7, r1, r2\n"
         "  addi r8, r6, 2000\n"
         "  sw r7, 0(r8)\n"
         "  addi r2, r2, 1\n"
         "  blt r2, r4, aj\n"
         "  addi r1, r1, 1\n"
         "  blt r1, r4, ai\n"
         // C = A x B (base 3000).
         "  li r1, 0\n"
         "ii:\n"
         "  li r2, 0\n"
         "jj:\n"
         "  li r3, 0\n"
         "  li r5, 0\n"
         "kk:\n"
         "  mul r6, r1, r4\n"
         "  add r6, r6, r3\n"
         "  addi r6, r6, 1000\n"
         "  lw r7, 0(r6)\n"
         "  mul r8, r3, r4\n"
         "  add r8, r8, r2\n"
         "  addi r8, r8, 2000\n"
         "  lw r9, 0(r8)\n"
         "  mul r10, r7, r9\n"
         "  add r5, r5, r10\n"
         "  addi r3, r3, 1\n"
         "  blt r3, r4, kk\n"
         "  mul r6, r1, r4\n"
         "  add r6, r6, r2\n"
         "  addi r6, r6, 3000\n"
         "  sw r5, 0(r6)\n"
         "  addi r2, r2, 1\n"
         "  blt r2, r4, jj\n"
         "  addi r1, r1, 1\n"
         "  blt r1, r4, ii\n"
         "  lw r11, 3000(r0)\n"
         "  out r11\n"
         "  mul r12, r4, r4\n"
         "  addi r12, r12, -1\n"
         "  addi r12, r12, 3000\n"
         "  lw r11, 0(r12)\n"
         "  out r11\n"
         "  halt\n";
}

std::string sieve(int n) {
  return "  li r1, " + num(n) + "\n"
         "  li r2, 2\n"
         "  li r10, 0\n"
         "outer:\n"
         "  addi r3, r2, 5000\n"
         "  lw r4, 0(r3)\n"
         "  bne r4, r0, next\n"
         "  addi r10, r10, 1\n"
         "  add r5, r2, r2\n"
         "mark:\n"
         "  blt r1, r5, next\n"
         "  addi r6, r5, 5000\n"
         "  li r7, 1\n"
         "  sw r7, 0(r6)\n"
         "  add r5, r5, r2\n"
         "  j mark\n"
         "next:\n"
         "  addi r2, r2, 1\n"
         "  bge r1, r2, outer\n"
         "  out r10\n"
         "  halt\n";
}

std::string producer(int n, int base) {
  return "  li r1, 0\n"
         "  li r2, " + num(n) + "\n"
         "  li r3, " + num(base) + "\n"
         "ploop:\n"
         "  addi r4, r3, 1\n"
         "  add r4, r4, r1\n"
         "  sw r1, 0(r4)\n"
         "  addi r1, r1, 1\n"
         "  blt r1, r2, ploop\n"
         "  li r5, 1\n"
         "  sw r5, 0(r3)\n"
         "  halt\n";
}

std::string consumer(int n, int base) {
  return "  li r3, " + num(base) + "\n"
         "spin:\n"
         "  lw r4, 0(r3)\n"
         "  beq r4, r0, spin\n"
         "  li r1, 0\n"
         "  li r2, " + num(n) + "\n"
         "  li r5, 0\n"
         "cloop:\n"
         "  addi r4, r3, 1\n"
         "  add r4, r4, r1\n"
         "  lw r6, 0(r4)\n"
         "  add r5, r5, r6\n"
         "  addi r1, r1, 1\n"
         "  blt r1, r2, cloop\n"
         "  out r5\n"
         "  halt\n";
}

}  // namespace liberty::upl::workloads
