# Empty compiler generated dependencies file for test_upl_ablation.
# This may be replaced when dependencies are built.
