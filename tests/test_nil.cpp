// NIL: Ethernet framing, fabric adapter, and the Tigon-2-style programmable
// NIC running LRISC firmware.
#include <gtest/gtest.h>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/nil/nil.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/upl/upl.hpp"
#include "test_util.hpp"

namespace {

using liberty::Payload;
using liberty::Value;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using namespace liberty::nil;
using liberty::test::params;

// ---------------------------------------------------------------------------
// CRC / framing
// ---------------------------------------------------------------------------

TEST(NilEthernet, Crc32KnownProperties) {
  EXPECT_EQ(crc32({}), 0x0u ^ crc32({}));  // deterministic
  EXPECT_NE(crc32({1, 2, 3}), crc32({3, 2, 1}));
  EXPECT_NE(crc32({0}), crc32({}));
  EXPECT_EQ(crc32({42, 7}), crc32({42, 7}));
}

TEST(NilEthernet, FrameFcsDetectsCorruption) {
  auto frame = EthFrame::make(1, 2, {10, 20, 30});
  EXPECT_TRUE(frame->fcs_ok());
  EthFrame corrupted(*frame);
  corrupted.payload[1] ^= 0x4;
  EXPECT_FALSE(corrupted.fcs_ok());
}

// ---------------------------------------------------------------------------
// FabricAdapter: messages over a CCL mesh
// ---------------------------------------------------------------------------

TEST(NilAdapter, RoundTripsRoutableMessagesOverMesh) {
  Netlist nl;
  auto mesh = liberty::ccl::build_mesh(nl, "mesh", 2, 2);
  // Node 0 sends EthFrames (Routable by dst mac) to node 3 through
  // adapters on both sides.
  auto& tx = nl.make<FabricAdapter>("tx", params({{"id", 0}, {"vcs", 1}}));
  auto& rx = nl.make<FabricAdapter>("rx", params({{"id", 3}, {"vcs", 1}}));
  auto& src = nl.make<liberty::pcl::Source>(
      "src", params({{"kind", "token"}, {"period", 3}, {"count", 8}}));
  auto& fm = nl.make<liberty::pcl::FuncMap>("fm", Params());
  auto& sink = nl.make<liberty::pcl::Sink>("sink", Params());
  std::int64_t seq = 0;
  fm.set_fn([&seq](const Value&) {
    return Value(std::static_pointer_cast<const Payload>(
        EthFrame::make(0, 3, {seq++, 99})));
  });
  nl.connect(src.out("out"), fm.in("in"));
  nl.connect(fm.out("out"), tx.in("msg_in"));
  nl.connect_at(tx.out("net_out"), 0, mesh.inject_port(0), 0);
  nl.connect_at(mesh.eject_port(3), 0, rx.in("net_in"), 0);
  nl.connect(rx.out("msg_out"), sink.in("in"));
  nl.finalize();

  std::vector<std::int64_t> seen;
  sink.set_consume_hook([&seen](const Value& v, liberty::core::Cycle) {
    const auto f = v.as<EthFrame>();
    EXPECT_TRUE(f->fcs_ok());
    seen.push_back(f->payload[0]);
  });
  Simulator sim(nl);
  sim.run(400);
  ASSERT_EQ(seen.size(), 8u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

// ---------------------------------------------------------------------------
// Programmable NIC: firmware-driven TX and RX
// ---------------------------------------------------------------------------

/// Rig: host memory + programmable NIC; the "wire" loops TX back into RX
/// through a gate (so we can also test CRC drops).
struct NicRig {
  Netlist nl;
  liberty::pcl::MemoryArray* host_mem = nullptr;
  ProgrammableNic nic;
  liberty::core::Connection* wire = nullptr;
};

void build_nic_rig(NicRig& rig, bool loopback) {
  rig.host_mem = &rig.nl.make<liberty::pcl::MemoryArray>(
      "host_mem", params({{"latency", 1}, {"mshrs", 4}, {"ports", 2}}));
  rig.nic = build_programmable_nic(rig.nl, "nic", /*mac=*/5);
  // Firmware core and assist DMA share the host memory (multi-master).
  rig.nl.connect_at(rig.nic.core->out("mem_req"), 0,
                    rig.host_mem->in("req"), 0);
  rig.nl.connect_at(rig.host_mem->out("resp"), 0,
                    rig.nic.core->in("mem_resp"), 0);
  rig.nl.connect_at(rig.nic.assist->out("host_req"), 0,
                    rig.host_mem->in("req"), 1);
  rig.nl.connect_at(rig.host_mem->out("resp"), 1,
                    rig.nic.assist->in("host_resp"), 0);
  if (loopback) {
    rig.wire = &rig.nl.connect(rig.nic.assist->out("net_tx"),
                               rig.nic.assist->in("net_rx"));
  }
  rig.nl.finalize();
}

TEST(NilNic, FirmwareTransmitsFromTxRingAndReceivesIntoRxRing) {
  NicRig rig;
  build_nic_rig(rig, /*loopback=*/true);
  const NicFirmwareConfig cfg;

  // Host: payload at 100.. ; TX descriptor 0 = [100, 4, ready, dst=5].
  for (int i = 0; i < 4; ++i) {
    rig.host_mem->poke(100 + static_cast<std::uint64_t>(i), 1000 + i);
  }
  const auto tx0 = static_cast<std::uint64_t>(cfg.tx_ring);
  rig.host_mem->poke(tx0 + 0, 100);
  rig.host_mem->poke(tx0 + 1, 4);
  rig.host_mem->poke(tx0 + 3, 5);  // loopback: to our own MAC
  // RX descriptor 0: free buffer at 300.
  const auto rx0 = static_cast<std::uint64_t>(cfg.rx_ring);
  rig.host_mem->poke(rx0 + 0, 300);
  rig.host_mem->poke(rx0 + 2, 1);  // free
  rig.host_mem->poke(tx0 + 2, 1);  // TX ready — firmware may start

  Simulator sim(rig.nl);
  // Run until the RX descriptor is completed by the firmware.
  for (int i = 0; i < 20000 && rig.host_mem->peek(rx0 + 2) != 2; ++i) {
    sim.step();
  }
  EXPECT_EQ(rig.host_mem->peek(tx0 + 2), 2) << "TX descriptor not completed";
  ASSERT_EQ(rig.host_mem->peek(rx0 + 2), 2) << "RX descriptor not completed";
  EXPECT_EQ(rig.host_mem->peek(rx0 + 1), 4);  // received length
  EXPECT_EQ(rig.host_mem->peek(rx0 + 3), 5);  // source MAC
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.host_mem->peek(300 + static_cast<std::uint64_t>(i)),
              1000 + i);
  }
  EXPECT_EQ(rig.nic.assist->stats().counter_value("tx_frames"), 1u);
  EXPECT_EQ(rig.nic.assist->stats().counter_value("rx_frames"), 1u);
}

TEST(NilNic, MultipleDescriptorsFlowThroughTheRing) {
  NicRig rig;
  build_nic_rig(rig, /*loopback=*/true);
  const NicFirmwareConfig cfg;
  const auto tx0 = static_cast<std::uint64_t>(cfg.tx_ring);
  const auto rx0 = static_cast<std::uint64_t>(cfg.rx_ring);

  constexpr int kFrames = 3;
  for (int d = 0; d < kFrames; ++d) {
    const auto base = 100 + static_cast<std::uint64_t>(d) * 16;
    for (int i = 0; i < 2; ++i) {
      rig.host_mem->poke(base + static_cast<std::uint64_t>(i),
                         100 * d + i);
    }
    rig.host_mem->poke(tx0 + static_cast<std::uint64_t>(d) * 4 + 0,
                       static_cast<std::int64_t>(base));
    rig.host_mem->poke(tx0 + static_cast<std::uint64_t>(d) * 4 + 1, 2);
    rig.host_mem->poke(tx0 + static_cast<std::uint64_t>(d) * 4 + 3, 5);
    rig.host_mem->poke(rx0 + static_cast<std::uint64_t>(d) * 4 + 0,
                       400 + d * 8);
    rig.host_mem->poke(rx0 + static_cast<std::uint64_t>(d) * 4 + 2, 1);
    rig.host_mem->poke(tx0 + static_cast<std::uint64_t>(d) * 4 + 2, 1);
  }

  Simulator sim(rig.nl);
  const auto last_rx = rx0 + (kFrames - 1) * 4 + 2;
  for (int i = 0; i < 60000 && rig.host_mem->peek(last_rx) != 2; ++i) {
    sim.step();
  }
  for (int d = 0; d < kFrames; ++d) {
    EXPECT_EQ(rig.host_mem->peek(rx0 + static_cast<std::uint64_t>(d) * 4 + 2),
              2)
        << "rx desc " << d;
    EXPECT_EQ(rig.host_mem->peek(400 + static_cast<std::uint64_t>(d) * 8),
              100 * d);
  }
  EXPECT_EQ(rig.nic.assist->stats().counter_value("tx_frames"),
            static_cast<std::uint64_t>(kFrames));
}

TEST(NilNic, CorruptedFramesAreDroppedByFcs) {
  NicRig rig;
  build_nic_rig(rig, /*loopback=*/true);
  const NicFirmwareConfig cfg;
  const auto tx0 = static_cast<std::uint64_t>(cfg.tx_ring);

  // Corrupt every frame on the wire: flip a payload word.
  rig.wire->set_transfer_gate([](const Value&) { return true; });
  // The gate cannot mutate; instead use a FuncMap-free approach: corrupt by
  // replacing the frame mid-flight is not possible on a connection, so we
  // instead check the CRC machinery directly through the assist by sending
  // a bad frame via a second rig below.  Here just confirm good frames
  // pass.
  rig.host_mem->poke(100, 7);
  rig.host_mem->poke(tx0 + 0, 100);
  rig.host_mem->poke(tx0 + 1, 1);
  rig.host_mem->poke(tx0 + 3, 5);
  rig.host_mem->poke(tx0 + 2, 1);
  Simulator sim(rig.nl);
  for (int i = 0;
       i < 20000 && rig.nic.assist->stats().counter_value("rx_frames") == 0;
       ++i) {
    sim.step();
  }
  EXPECT_EQ(rig.nic.assist->stats().counter_value("crc_errors"), 0u);
  EXPECT_EQ(rig.nic.assist->stats().counter_value("rx_frames"), 1u);
}

TEST(NilNic, AssistRejectsBadFcsFrames) {
  // Drive a hand-corrupted frame straight into an assist.
  Netlist nl;
  Params ap;
  ap.set("mac", 9);
  auto& assist = nl.make<NicAssist>("assist", ap);
  auto& src = nl.make<liberty::pcl::Source>(
      "src", params({{"kind", "token"}, {"period", 1}, {"count", 2}}));
  auto& fm = nl.make<liberty::pcl::FuncMap>("fm", Params());
  int n = 0;
  fm.set_fn([&n](const Value&) {
    auto good = EthFrame::make(1, 9, {5, 6});
    if (n++ == 0) {
      return Value(std::static_pointer_cast<const Payload>(good));
    }
    auto bad = std::make_shared<EthFrame>(*good);
    bad->payload[0] ^= 1;  // FCS now wrong
    return Value(std::static_pointer_cast<const Payload>(
        std::shared_ptr<const EthFrame>(std::move(bad))));
  });
  nl.connect(src.out("out"), fm.in("in"));
  nl.connect(fm.out("out"), assist.in("net_rx"));
  nl.finalize();
  Simulator sim(nl);
  sim.run(20);
  EXPECT_EQ(assist.stats().counter_value("rx_frames"), 1u);
  EXPECT_EQ(assist.stats().counter_value("crc_errors"), 1u);
}

}  // namespace
