# Empty compiler generated dependencies file for grid.
# This may be replaced when dependencies are built.
