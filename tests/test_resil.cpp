// The resilience subsystem (liberty::resil): fault-plan serialization,
// deterministic injection across every scheduler and optimization level,
// watchdog detection with module/channel attribution (and zero false
// positives), and checkpoint/rollback recovery proved bit-identical to a
// fault-free run.  docs/resilience.md is the narrative companion.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "liberty/core/scheduler.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/obs/metrics.hpp"
#include "liberty/opt/optimizer.hpp"
#include "liberty/resil/fault_plan.hpp"
#include "liberty/resil/injector.hpp"
#include "liberty/resil/recovery.hpp"
#include "liberty/resil/watchdog.hpp"
#include "liberty/support/error.hpp"
#include "liberty/testing/netspec.hpp"
#include "test_util.hpp"

namespace {

using liberty::Value;
using liberty::core::Cycle;
using liberty::core::Netlist;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using liberty::resil::Diagnostic;
using liberty::resil::FaultClass;
using liberty::resil::FaultInjector;
using liberty::resil::FaultPlan;
using liberty::resil::FaultSpec;
using liberty::resil::InjectionSite;
using liberty::resil::RecoveryPolicy;
using liberty::resil::RecoveryReport;
using liberty::resil::Supervisor;
using liberty::resil::SupervisorConfig;
using liberty::resil::TraceRecorder;
using liberty::resil::Watchdog;
using liberty::test::params;
using liberty::test::registry;
using liberty::testing::NetSpec;

constexpr Cycle kCycles = 120;
constexpr Cycle kOnset = 40;

/// src (counter, period 2) -> q (depth 3) -> snk.  The period-2 source
/// makes the queue alternate offer/idle on its output, so both ack
/// polarities of a backward fault are observable; conn 0 is Managed
/// (queue input), conn 1 is ungated AutoAccept (sink input).
NetSpec matrix_spec() {
  NetSpec spec;
  spec.modules.push_back({"pcl.source", "src",
                          params({{"kind", Value(std::string("counter"))},
                                  {"period", Value(std::int64_t{2})}})});
  spec.modules.push_back(
      {"pcl.queue", "q", params({{"depth", Value(std::int64_t{3})}})});
  spec.modules.push_back({"pcl.sink", "snk", {}});
  spec.edges.push_back({0, "out", 1, "in"});
  spec.edges.push_back({1, "out", 2, "in"});
  return spec;
}

/// One fault of `cls` at the canonical matrix target: backward faults hit
/// the AutoAccept conn 1, forward faults conn 0, handler faults module q.
FaultPlan plan_for(FaultClass cls) {
  FaultPlan plan;
  plan.seed = 0xfa;
  FaultSpec f;
  f.cls = cls;
  f.from_cycle = kOnset;
  if (cls == FaultClass::HandlerThrow) {
    f.module = "q";
  } else if (cls == FaultClass::DropAck || cls == FaultClass::SpuriousAck) {
    f.connection = 1;
  } else {
    f.connection = 0;
  }
  plan.faults.push_back(std::move(f));
  return plan;
}

struct TracedRun {
  std::vector<std::uint64_t> hashes;
  std::uint64_t state_digest = 0;
  bool aborted = false;
  Cycle aborted_at = 0;
  std::string error;
  std::vector<InjectionSite> sites;
};

/// Build a fresh netlist from `spec`, optionally optimize, optionally
/// inject, run `cycles` under (kind, threads) recording the transfer
/// trace.  Everything a determinism comparison needs in one value.
TracedRun run_traced(const NetSpec& spec, SchedulerKind kind,
                     unsigned threads, int opt_level, const FaultPlan* plan,
                     Cycle cycles = kCycles) {
  Netlist netlist;
  spec.build(netlist, registry());
  if (opt_level > 0) {
    liberty::opt::optimize(netlist,
                           liberty::opt::OptOptions::for_level(opt_level));
  }
  // The injector must outlive the simulator (the scheduler's destructor
  // clears the per-connection hooks).
  std::unique_ptr<FaultInjector> inj;
  if (plan != nullptr) inj = std::make_unique<FaultInjector>(*plan);
  Simulator sim(netlist, kind, threads);
  if (inj) inj->install(sim);
  TraceRecorder rec(netlist);
  sim.set_probe(&rec);
  TracedRun out;
  try {
    sim.run(cycles);
  } catch (const liberty::Error& e) {
    out.aborted = true;
    out.aborted_at = sim.now() > 0 ? sim.now() - 1 : 0;
    out.error = e.what();
  }
  out.hashes = rec.hashes();
  out.state_digest = sim.snapshot().digest();
  if (inj) out.sites = inj->sites();
  return out;
}

void expect_same_run(const TracedRun& a, const TracedRun& b,
                     const std::string& label) {
  EXPECT_EQ(a.hashes, b.hashes) << label;
  EXPECT_EQ(a.state_digest, b.state_digest) << label;
  EXPECT_EQ(a.aborted, b.aborted) << label;
  EXPECT_EQ(a.aborted_at, b.aborted_at) << label;
  EXPECT_EQ(a.error, b.error) << label;
  ASSERT_EQ(a.sites.size(), b.sites.size()) << label;
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(a.sites[i].cls, b.sites[i].cls) << label;
    EXPECT_EQ(a.sites[i].connection, b.sites[i].connection) << label;
    EXPECT_EQ(a.sites[i].module, b.sites[i].module) << label;
    EXPECT_EQ(a.sites[i].first_cycle, b.sites[i].first_cycle) << label;
    EXPECT_EQ(a.sites[i].applications, b.sites[i].applications) << label;
  }
}

/// Fault-free per-connection baseline for the watchdog's divergence check,
/// recorded on a fresh twin elaboration of the same spec.
std::vector<std::vector<std::uint64_t>> record_baseline(const NetSpec& spec,
                                                        int opt_level) {
  Netlist netlist;
  spec.build(netlist, registry());
  if (opt_level > 0) {
    liberty::opt::optimize(netlist,
                           liberty::opt::OptOptions::for_level(opt_level));
  }
  Simulator sim(netlist, SchedulerKind::Static, 0);
  Watchdog rec;
  rec.record_baseline();
  rec.attach(sim);
  sim.run(kCycles);
  return rec.take_baseline();
}

// --- FaultPlan the value ----------------------------------------------------

TEST(FaultPlan, ClassNamesRoundTrip) {
  for (std::size_t i = 0; i < liberty::resil::kFaultClassCount; ++i) {
    const auto cls = static_cast<FaultClass>(i);
    EXPECT_EQ(liberty::resil::fault_class_from_name(
                  liberty::resil::fault_class_name(cls)),
              cls);
  }
  EXPECT_THROW(liberty::resil::fault_class_from_name("gamma_ray"),
               liberty::Error);
}

TEST(FaultPlan, JsonRoundTripEveryClass) {
  FaultPlan plan;
  plan.seed = 0x1234;
  for (std::size_t i = 0; i < liberty::resil::kFaultClassCount; ++i) {
    FaultSpec f;
    f.cls = static_cast<FaultClass>(i);
    if (f.cls == FaultClass::HandlerThrow) {
      f.module = "m" + std::to_string(i);
    } else if (!liberty::resil::is_env_fault(f.cls)) {
      // Environment faults target the checkpoint path, not a connection.
      f.connection = static_cast<liberty::core::ConnId>(i);
    }
    f.from_cycle = 10 * i;
    if (i % 2 == 0) f.scheduler = "static";
    plan.faults.push_back(std::move(f));
  }
  EXPECT_EQ(FaultPlan::from_json(plan.to_json()), plan);
}

TEST(FaultPlan, FromJsonRejectsGarbage) {
  EXPECT_THROW(FaultPlan::from_json("{}"), liberty::Error);
  EXPECT_THROW(FaultPlan::from_json("{\"schema\":\"other\",\"faults\":[]}"),
               liberty::Error);
}

TEST(FaultPlan, RandomIsDeterministicPerSeed) {
  Netlist netlist;
  matrix_spec().build(netlist, registry());
  const FaultPlan a = FaultPlan::random(7, netlist, kCycles, 3);
  const FaultPlan b = FaultPlan::random(7, netlist, kCycles, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.faults.size(), 3u);
  EXPECT_NE(a, FaultPlan::random(8, netlist, kCycles, 3));
}

TEST(FaultPlan, PolicyNamesRoundTrip) {
  for (const auto p : {RecoveryPolicy::Abort, RecoveryPolicy::RollbackRetry,
                       RecoveryPolicy::Quarantine}) {
    EXPECT_EQ(liberty::resil::policy_from_name(liberty::resil::policy_name(p)),
              p);
  }
  EXPECT_THROW(liberty::resil::policy_from_name("shrug"), liberty::Error);
}

TEST(FaultPlan, InstallRejectsUnknownTargets) {
  Netlist netlist;
  matrix_spec().build(netlist, registry());
  Simulator sim(netlist);
  FaultPlan bad_conn = plan_for(FaultClass::DropAck);
  bad_conn.faults[0].connection = 99;
  FaultInjector inj_a(bad_conn);
  EXPECT_THROW(inj_a.install(sim), liberty::Error);
  FaultPlan bad_mod = plan_for(FaultClass::HandlerThrow);
  bad_mod.faults[0].module = "ghost";
  FaultInjector inj_b(bad_mod);
  EXPECT_THROW(inj_b.install(sim), liberty::Error);
}

// --- Deterministic injection ------------------------------------------------

// The tentpole guarantee: the same plan produces the same fault sites and
// the same post-fault trajectory under every scheduler at every -O level.
TEST(Injection, IdenticalAcrossSchedulersAndOptLevels) {
  const NetSpec spec = matrix_spec();
  struct Cfg {
    SchedulerKind kind;
    unsigned threads;
    const char* name;
  };
  const Cfg cfgs[] = {{SchedulerKind::Dynamic, 0, "dynamic"},
                      {SchedulerKind::Static, 0, "static"},
                      {SchedulerKind::Parallel, 2, "parallel"}};
  for (std::size_t i = 0; i < liberty::resil::kFaultClassCount; ++i) {
    const auto cls = static_cast<FaultClass>(i);
    // Environment faults fire on the durable-checkpoint seam, not inside
    // the kernel; test_durable.cpp proves their determinism.
    if (liberty::resil::is_env_fault(cls)) continue;
    const FaultPlan plan = plan_for(cls);
    const TracedRun ref =
        run_traced(spec, SchedulerKind::Dynamic, 0, /*opt=*/0, &plan);
    ASSERT_FALSE(ref.sites.empty())
        << liberty::resil::fault_class_name(cls) << " never applied";
    EXPECT_EQ(ref.sites.front().first_cycle, kOnset)
        << liberty::resil::fault_class_name(cls);
    for (const Cfg& cfg : cfgs) {
      for (const int opt : {0, 2}) {
        const std::string label =
            std::string(liberty::resil::fault_class_name(cls)) + " under " +
            cfg.name + " -O" + std::to_string(opt);
        expect_same_run(
            ref, run_traced(spec, cfg.kind, cfg.threads, opt, &plan), label);
      }
    }
  }
}

TEST(Injection, FaultedTraceDiffersFromFaultFree) {
  const NetSpec spec = matrix_spec();
  const TracedRun clean =
      run_traced(spec, SchedulerKind::Static, 0, 0, nullptr);
  ASSERT_FALSE(clean.aborted);
  for (std::size_t i = 0; i < liberty::resil::kFaultClassCount; ++i) {
    const auto cls = static_cast<FaultClass>(i);
    // Environment faults never touch the data plane — the trace is the
    // fault-free one by design (test_durable.cpp covers their effect).
    if (liberty::resil::is_env_fault(cls)) continue;
    const FaultPlan plan = plan_for(cls);
    const TracedRun faulted =
        run_traced(spec, SchedulerKind::Static, 0, 0, &plan);
    if (cls == FaultClass::SpuriousAck) {
      // A forged ack on an ungated AutoAccept connection cannot mint a
      // transfer (transfer needs enable too), so the data plane is
      // untouched — this class is detectable only through the protocol
      // invariant, which Watchdog.DetectsEveryFaultClass covers.
      EXPECT_EQ(clean.hashes, faulted.hashes);
      continue;
    }
    EXPECT_NE(clean.hashes, faulted.hashes)
        << liberty::resil::fault_class_name(cls) << " left no trace";
    // Pre-onset prefix is untouched: injection starts exactly at kOnset.
    for (Cycle c = 0; c < kOnset && c < faulted.hashes.size(); ++c) {
      ASSERT_EQ(clean.hashes[c], faulted.hashes[c])
          << liberty::resil::fault_class_name(cls) << " perturbed cycle "
          << c << " before its onset";
    }
  }
}

TEST(Injection, HandlerThrowAbortsAtOnsetCycle) {
  const FaultPlan plan = plan_for(FaultClass::HandlerThrow);
  for (const auto kind :
       {SchedulerKind::Dynamic, SchedulerKind::Static, SchedulerKind::Parallel}) {
    const TracedRun r = run_traced(matrix_spec(), kind, 2, 2, &plan);
    ASSERT_TRUE(r.aborted);
    EXPECT_EQ(r.aborted_at, kOnset);
    EXPECT_NE(r.error.find("module 'q'"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("cycle 40"), std::string::npos) << r.error;
    // Every pre-onset cycle completed and was recorded.
    EXPECT_EQ(r.hashes.size(), kOnset);
  }
}

TEST(Injection, SchedulerRestrictedPlanOnlyBitesThatScheduler) {
  FaultPlan plan = plan_for(FaultClass::DropAck);
  plan.faults[0].scheduler = "static";
  const TracedRun on_static =
      run_traced(matrix_spec(), SchedulerKind::Static, 0, 0, &plan);
  const TracedRun on_dynamic =
      run_traced(matrix_spec(), SchedulerKind::Dynamic, 0, 0, &plan);
  EXPECT_FALSE(on_static.sites.empty());
  EXPECT_TRUE(on_dynamic.sites.empty());
  EXPECT_NE(on_static.hashes, on_dynamic.hashes);
}

TEST(Injection, MaskedSiteStopsApplying) {
  FaultPlan plan = plan_for(FaultClass::CorruptData);
  FaultInjector inj(plan);
  Netlist netlist;
  matrix_spec().build(netlist, registry());
  Simulator sim(netlist);
  inj.install(sim);
  sim.run(kCycles / 2);
  ASSERT_FALSE(inj.sites().empty());
  const std::uint64_t before = inj.sites().front().applications;
  EXPECT_EQ(inj.mask_through(kCycles), 1);
  sim.run(kCycles / 2);
  EXPECT_EQ(inj.sites().front().applications, before);
}

// --- Watchdog detection -----------------------------------------------------

struct DetectionOutcome {
  bool detected = false;
  Diagnostic first;
  std::uint64_t violations = 0;
};

DetectionOutcome detect(FaultClass cls, int opt_level) {
  const NetSpec spec = matrix_spec();
  auto baseline = record_baseline(spec, opt_level);
  Netlist netlist;
  spec.build(netlist, registry());
  if (opt_level > 0) {
    liberty::opt::optimize(netlist,
                           liberty::opt::OptOptions::for_level(opt_level));
  }
  const FaultPlan plan = plan_for(cls);
  FaultInjector inj(plan);
  Simulator sim(netlist, SchedulerKind::Static, 0);
  inj.install(sim);
  Watchdog wd;
  wd.set_baseline(std::move(baseline));
  wd.attach(sim);
  try {
    sim.run(kCycles);
  } catch (const liberty::Error& e) {
    wd.note_kernel_error(e.what(), sim.now() > 0 ? sim.now() - 1 : 0);
  }
  DetectionOutcome out;
  out.violations = wd.violation_count();
  if (!wd.diagnostics().empty()) {
    out.detected = true;
    out.first = wd.diagnostics().front();
  }
  return out;
}

// Every fault class must be detected, with the right invariant family and
// the right module/channel blamed — at both -O0 and -O2.
TEST(Watchdog, DetectsEveryFaultClassWithAttribution) {
  struct Expect {
    FaultClass cls;
    Diagnostic::Kind kind;
    const char* module;
  };
  const Expect table[] = {
      {FaultClass::CorruptData, Diagnostic::Kind::Divergence, "q"},
      {FaultClass::DropEnable, Diagnostic::Kind::Divergence, "q"},
      {FaultClass::StuckChannel, Diagnostic::Kind::Divergence, "q"},
      {FaultClass::DropAck, Diagnostic::Kind::Protocol, "snk"},
      {FaultClass::SpuriousAck, Diagnostic::Kind::Protocol, "snk"},
      {FaultClass::HandlerThrow, Diagnostic::Kind::HandlerFault, "q"},
  };
  for (const int opt : {0, 2}) {
    for (const Expect& e : table) {
      const DetectionOutcome got = detect(e.cls, opt);
      const std::string label =
          std::string(liberty::resil::fault_class_name(e.cls)) + " at -O" +
          std::to_string(opt);
      ASSERT_TRUE(got.detected) << label;
      EXPECT_EQ(got.first.kind, e.kind) << label << ": "
                                        << got.first.format();
      EXPECT_EQ(got.first.module, e.module) << label << ": "
                                            << got.first.format();
      EXPECT_GE(got.first.cycle, kOnset) << label;
      EXPECT_LE(got.first.cycle, kOnset + 2) << label;
      if (e.kind != Diagnostic::Kind::HandlerFault) {
        EXPECT_FALSE(got.first.connection.empty()) << label;
      }
    }
  }
}

// The other half of the coverage matrix: a healthy run must stay silent.
TEST(Watchdog, ZeroFalsePositivesOnFaultFreeRuns) {
  NetSpec stochastic;
  stochastic.modules.push_back(
      {"pcl.source", "src",
       params({{"kind", Value(std::string("random"))},
               {"period", Value(std::int64_t{2})},
               {"seed", Value(std::int64_t{99})}})});
  stochastic.modules.push_back(
      {"pcl.delay", "d", params({{"latency", Value(std::int64_t{2})}})});
  stochastic.modules.push_back({"pcl.sink", "snk", {}});
  stochastic.edges.push_back({0, "out", 1, "in"});
  stochastic.edges.push_back({1, "out", 2, "in"});

  for (const NetSpec& spec : {matrix_spec(), stochastic}) {
    for (const int opt : {0, 2}) {
      auto baseline = record_baseline(spec, opt);
      Netlist netlist;
      spec.build(netlist, registry());
      if (opt > 0) {
        liberty::opt::optimize(netlist,
                               liberty::opt::OptOptions::for_level(opt));
      }
      Simulator sim(netlist, SchedulerKind::Static, 0);
      Watchdog wd;
      wd.set_baseline(std::move(baseline));
      wd.attach(sim);
      sim.run(kCycles);
      EXPECT_EQ(wd.violation_count(), 0u)
          << "-O" << opt << ": " << (wd.diagnostics().empty()
                                         ? std::string("?")
                                         : wd.diagnostics().front().format());
      EXPECT_EQ(wd.cycles_checked(), kCycles);
    }
  }
}

TEST(Watchdog, ExportsMetrics) {
  const DetectionOutcome got = detect(FaultClass::DropAck, 0);
  ASSERT_TRUE(got.detected);
  // Re-run to have a live watchdog to export from.
  const NetSpec spec = matrix_spec();
  Netlist netlist;
  spec.build(netlist, registry());
  const FaultPlan plan = plan_for(FaultClass::DropAck);
  FaultInjector inj(plan);
  Simulator sim(netlist);
  inj.install(sim);
  Watchdog wd;
  wd.attach(sim);
  sim.run(kCycles);
  liberty::obs::MetricsRegistry reg;
  wd.export_metrics(reg);
  const auto& counters = reg.counters();
  ASSERT_TRUE(counters.count("resil.watchdog.violations"));
  EXPECT_GT(counters.at("resil.watchdog.violations"), 0u);
  EXPECT_EQ(counters.at("resil.watchdog.cycles_checked"), kCycles);
  EXPECT_GT(counters.at("resil.watchdog.protocol"), 0u);
}

// --- Recovery ---------------------------------------------------------------

/// Fault-free supervised reference run on a fresh elaboration.
RecoveryReport reference_run(const NetSpec& spec, Netlist& netlist) {
  spec.build(netlist, registry());
  SupervisorConfig cfg;
  Supervisor sup(netlist, cfg);
  return sup.run(kCycles);
}

// The flagship recovery guarantee: rollback-and-retry with the fault site
// masked finishes with trace hashes and a state digest bit-identical to a
// run that never faulted.
TEST(Recovery, RollbackRetryIsBitIdenticalToFaultFree) {
  const NetSpec spec = matrix_spec();
  Netlist ref_netlist;
  const RecoveryReport ref = reference_run(spec, ref_netlist);
  ASSERT_TRUE(ref.completed) << ref.error;
  ASSERT_EQ(ref.cycles, kCycles);

  // One protocol-detectable and one divergence-detectable fault class.
  for (const FaultClass cls :
       {FaultClass::DropAck, FaultClass::CorruptData,
        FaultClass::HandlerThrow}) {
    auto baseline = record_baseline(spec, 0);
    Netlist netlist;
    spec.build(netlist, registry());
    const FaultPlan plan = plan_for(cls);
    FaultInjector inj(plan);
    Watchdog wd;
    wd.set_baseline(std::move(baseline));
    SupervisorConfig cfg;
    cfg.policy = RecoveryPolicy::RollbackRetry;
    cfg.checkpoint_every = 16;
    Supervisor sup(netlist, cfg, &inj, &wd);
    const RecoveryReport rep = sup.run(kCycles);
    const std::string label(liberty::resil::fault_class_name(cls));
    ASSERT_TRUE(rep.completed) << label << ": " << rep.error;
    EXPECT_GE(rep.rollbacks, 1) << label;
    EXPECT_EQ(rep.cycles, kCycles) << label;
    EXPECT_EQ(rep.trace_hashes, ref.trace_hashes) << label;
    EXPECT_EQ(rep.trace_digest(), ref.trace_digest()) << label;
    EXPECT_EQ(rep.state_digest, ref.state_digest) << label;
    EXPECT_FALSE(rep.events.empty()) << label;
  }
}

TEST(Recovery, AbortPolicyFailsFast) {
  Netlist netlist;
  matrix_spec().build(netlist, registry());
  const FaultPlan plan = plan_for(FaultClass::HandlerThrow);
  FaultInjector inj(plan);
  SupervisorConfig cfg;  // policy Abort by default
  Supervisor sup(netlist, cfg, &inj);
  const RecoveryReport rep = sup.run(kCycles);
  EXPECT_FALSE(rep.completed);
  EXPECT_EQ(rep.cycles, kOnset);
  EXPECT_NE(rep.error.find("module 'q'"), std::string::npos) << rep.error;
  EXPECT_EQ(rep.rollbacks, 0);
}

TEST(Recovery, QuarantinePolicyCompletesWithModuleIsolated) {
  Netlist netlist;
  matrix_spec().build(netlist, registry());
  const FaultPlan plan = plan_for(FaultClass::HandlerThrow);
  FaultInjector inj(plan);
  SupervisorConfig cfg;
  cfg.policy = RecoveryPolicy::Quarantine;
  cfg.checkpoint_every = 16;
  Supervisor sup(netlist, cfg, &inj);
  const RecoveryReport rep = sup.run(kCycles);
  ASSERT_TRUE(rep.completed) << rep.error;
  EXPECT_EQ(rep.quarantines, 1);
  EXPECT_EQ(rep.cycles, kCycles);
  EXPECT_EQ(netlist.quarantined_count(), 1u);
}

TEST(Recovery, RecoveryBudgetIsEnforced) {
  // Two handler faults, onsets apart; max_recoveries 1 lets the first be
  // rolled back but must give up on the second.
  Netlist netlist;
  matrix_spec().build(netlist, registry());
  FaultPlan plan = plan_for(FaultClass::HandlerThrow);
  FaultSpec second = plan.faults[0];
  second.module = "src";
  second.from_cycle = kOnset + 30;
  plan.faults.push_back(std::move(second));
  FaultInjector inj(plan);
  SupervisorConfig cfg;
  cfg.policy = RecoveryPolicy::RollbackRetry;
  cfg.checkpoint_every = 16;
  cfg.max_recoveries = 1;
  Supervisor sup(netlist, cfg, &inj);
  const RecoveryReport rep = sup.run(kCycles);
  EXPECT_FALSE(rep.completed);
  EXPECT_EQ(rep.rollbacks, 1);
  EXPECT_FALSE(rep.error.empty());
}

TEST(Recovery, IterationCapSurfacesCombinationalLoopError) {
  // A genuine combinational cycle (arbiter <-> tee, no sequential element
  // in the ring) cannot settle in one sweep, so cap 1 must die with the
  // attributed channel chain rather than spin.
  NetSpec spec;
  spec.modules.push_back({"pcl.source", "src",
                          params({{"kind", Value(std::string("counter"))},
                                  {"period", Value(std::int64_t{1})}})});
  spec.modules.push_back({"pcl.arbiter", "arb", {}});
  spec.modules.push_back({"pcl.tee", "tee", {}});
  spec.modules.push_back({"pcl.sink", "snk", {}});
  spec.edges.push_back({0, "out", 1, "in"});
  spec.edges.push_back({1, "out", 2, "in"});
  spec.edges.push_back({2, "out", 1, "in"});  // closes the loop
  spec.edges.push_back({2, "out", 3, "in"});
  Netlist netlist;
  spec.build(netlist, registry());
  SupervisorConfig cfg;
  cfg.iteration_cap = 1;
  Supervisor sup(netlist, cfg);
  const RecoveryReport rep = sup.run(kCycles);
  EXPECT_FALSE(rep.completed);
  EXPECT_NE(rep.error.find("combinational loop via"), std::string::npos)
      << rep.error;
  EXPECT_NE(rep.error.find("iteration cap"), std::string::npos) << rep.error;
  EXPECT_NE(rep.error.find("arb"), std::string::npos) << rep.error;
}

}  // namespace
