file(REMOVE_RECURSE
  "CMakeFiles/test_upl_core.dir/test_upl_core.cpp.o"
  "CMakeFiles/test_upl_core.dir/test_upl_core.cpp.o.d"
  "test_upl_core"
  "test_upl_core.pdb"
  "test_upl_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
