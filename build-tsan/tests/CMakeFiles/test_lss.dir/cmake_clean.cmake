file(REMOVE_RECURSE
  "CMakeFiles/test_lss.dir/test_lss.cpp.o"
  "CMakeFiles/test_lss.dir/test_lss.cpp.o.d"
  "test_lss"
  "test_lss.pdb"
  "test_lss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
