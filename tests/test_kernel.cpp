// Kernel semantics: the three-signal handshake, monotone resolution,
// default control, partial specification, control override, and
// scheduler equivalence.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "liberty/core/netlist.hpp"
#include "liberty/core/scheduler.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/support/error.hpp"
#include "test_util.hpp"

namespace {

using liberty::Value;
using liberty::core::AckMode;
using liberty::core::Connection;
using liberty::core::Cycle;
using liberty::core::Module;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using liberty::pcl::Queue;
using liberty::pcl::Sink;
using liberty::pcl::Source;
using liberty::test::params;

class KernelPipeline : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(KernelPipeline, SourceQueueSinkDeliversEverythingInOrder) {
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 50}, {"period", 1}}));
  auto& q = nl.make<Queue>("q", params({{"depth", 4}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), q.in("in"));
  nl.connect(q.out("out"), sink.in("in"));
  nl.finalize();

  std::vector<std::int64_t> seen;
  sink.set_consume_hook(
      [&seen](const Value& v, Cycle) { seen.push_back(v.as_int()); });

  Simulator sim(nl, GetParam());
  sim.run(200);

  ASSERT_EQ(seen.size(), 50u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(src.emitted(), 50u);
  EXPECT_EQ(sink.consumed(), 50u);
}

TEST_P(KernelPipeline, BackpressurePropagatesThroughQueue) {
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 40}, {"period", 1}}));
  auto& q = nl.make<Queue>("q", params({{"depth", 2}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), q.in("in"));
  Connection& down = nl.connect(q.out("out"), sink.in("in"));
  nl.finalize();

  // Gate the downstream link: accept only on even values of an external
  // counter, halving throughput.  This is the user-level control override
  // of §2.1 — no module code was touched.
  std::uint64_t beat = 0;
  down.set_transfer_gate([&beat](const Value&) { return (beat++ % 2) == 0; });

  Simulator sim(nl, GetParam());
  sim.run(200);

  EXPECT_EQ(sink.consumed(), 40u);
  // The queue must have filled and stalled the source at least once.
  EXPECT_GT(q.stats().counter_value("full_stalls"), 0u);
}

TEST_P(KernelPipeline, PartialSpecificationStillSimulates) {
  // A source with an unconnected output and a sink with an unconnected
  // input: both must run under default semantics (§2.2) without errors.
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 10}, {"period", 1}}));
  auto& sink = nl.make<Sink>("sink", Params());
  (void)src;
  (void)sink;
  nl.finalize();

  Simulator sim(nl, GetParam());
  sim.run(20);
  EXPECT_EQ(sink.consumed(), 0u);
}

TEST_P(KernelPipeline, StopRequestEndsRunEarly) {
  Netlist nl;
  auto& src = nl.make<Source>("src", params({{"kind", "token"}}));
  auto& sink = nl.make<Sink>("sink", params({{"stop_after", 5}}));
  nl.connect(src.out("out"), sink.in("in"));
  nl.finalize();

  Simulator sim(nl, GetParam());
  const Cycle ran = sim.run(1000);
  EXPECT_LT(ran, 1000u);
  EXPECT_EQ(sink.consumed(), 5u);
}

INSTANTIATE_TEST_SUITE_P(BothSchedulers, KernelPipeline,
                         ::testing::Values(SchedulerKind::Dynamic,
                                           SchedulerKind::Static),
                         [](const auto& info) {
                           return info.param == SchedulerKind::Dynamic
                                      ? "Dynamic"
                                      : "Static";
                         });

// ---------------------------------------------------------------------------
// Monotonicity enforcement
// ---------------------------------------------------------------------------

class NonMonotone : public Module {
 public:
  explicit NonMonotone(const std::string& name) : Module(name) {
    add_out("out", 0, 1);
  }
  void cycle_start(Cycle) override {
    out("out").send(Value(std::int64_t{1}));
    out("out").send(Value(std::int64_t{2}));  // conflicting re-drive
  }
};

TEST(KernelContract, ConflictingDriveThrows) {
  Netlist nl;
  auto& bad = nl.make<NonMonotone>("bad");
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(bad.out("out"), sink.in("in"));
  nl.finalize();
  Simulator sim(nl);
  EXPECT_THROW(sim.step(), liberty::SimulationError);
}

TEST(KernelContract, IdempotentRedriveIsAllowed) {
  class Idempotent : public Module {
   public:
    explicit Idempotent(const std::string& name) : Module(name) {
      add_out("out", 0, 1);
    }
    void cycle_start(Cycle) override {
      out("out").send(Value(std::int64_t{7}));
    }
    void react() override { out("out").send(Value(std::int64_t{7})); }
  };
  Netlist nl;
  auto& m = nl.make<Idempotent>("m");
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(m.out("out"), sink.in("in"));
  nl.finalize();
  Simulator sim(nl);
  EXPECT_NO_THROW(sim.run(5));
  EXPECT_EQ(sink.consumed(), 5u);
}

// ---------------------------------------------------------------------------
// Structural error detection at elaboration
// ---------------------------------------------------------------------------

TEST(KernelStructure, DuplicateInstanceNameRejected) {
  Netlist nl;
  nl.make<Sink>("x", Params());
  EXPECT_THROW(nl.make<Sink>("x", Params()), liberty::ElaborationError);
}

TEST(KernelStructure, InputToInputConnectionRejected) {
  Netlist nl;
  auto& a = nl.make<Sink>("a", Params());
  auto& b = nl.make<Sink>("b", Params());
  EXPECT_THROW(nl.connect(a.in("in"), b.in("in")),
               liberty::ElaborationError);
}

TEST(KernelStructure, ArityViolationRejectedAtFinalize) {
  Netlist nl;
  // Tee requires at least one input connection (min_conns == 1).
  nl.make<liberty::pcl::Tee>("t", Params());
  EXPECT_THROW(nl.finalize(), liberty::ElaborationError);
}

TEST(KernelStructure, DoubleEndpointBindRejected) {
  Netlist nl;
  auto& s1 = nl.make<Source>("s1", params({{"kind", "token"}}));
  auto& s2 = nl.make<Source>("s2", params({{"kind", "token"}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect_at(s1.out("out"), 0, sink.in("in"), 0);
  EXPECT_THROW(nl.connect_at(s2.out("out"), 0, sink.in("in"), 0),
               liberty::ElaborationError);
}

// ---------------------------------------------------------------------------
// Scheduler equivalence on a less trivial mesh of primitives
// ---------------------------------------------------------------------------

struct RunResult {
  std::vector<std::int64_t> sink_a;
  std::vector<std::int64_t> sink_b;
  std::uint64_t transfers = 0;
};

RunResult run_diamond(SchedulerKind kind, std::uint64_t seed) {
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", liberty::test::params({{"kind", "random"},
                                    {"count", 200},
                                    {"period", 1},
                                    {"seed", Value(static_cast<std::int64_t>(
                                                 seed))}}));
  auto& demux =
      nl.make<liberty::pcl::Demux>("demux", Params());
  auto& qa = nl.make<Queue>("qa", liberty::test::params({{"depth", 3}}));
  auto& qb = nl.make<Queue>("qb", liberty::test::params({{"depth", 5}}));
  auto& arb = nl.make<liberty::pcl::Arbiter>("arb", Params());
  auto& qm = nl.make<Queue>("qm", liberty::test::params({{"depth", 2}}));
  auto& sink = nl.make<Sink>("sink", Params());
  auto& sa = nl.make<Sink>("sa", Params());

  demux.set_selector(
      [](const Value& v) { return v.as_int() % 2 == 0 ? 0u : 1u; });

  nl.connect(src.out("out"), demux.in("in"));
  nl.connect_at(demux.out("out"), 0, qa.in("in"), 0);
  nl.connect_at(demux.out("out"), 1, qb.in("in"), 0);
  nl.connect(qa.out("out"), arb.in("in"));
  nl.connect(qb.out("out"), arb.in("in"));
  nl.connect(arb.out("out"), qm.in("in"));
  nl.connect(qm.out("out"), sink.in("in"));
  nl.finalize();

  RunResult res;
  sink.set_consume_hook(
      [&res](const Value& v, Cycle) { res.sink_a.push_back(v.as_int()); });
  sa.set_consume_hook(
      [&res](const Value& v, Cycle) { res.sink_b.push_back(v.as_int()); });

  Simulator sim(nl, kind);
  sim.run(600);
  for (const auto& c : nl.connections()) res.transfers += c->transfer_count();
  return res;
}

class SchedulerEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerEquivalence, DiamondNetworkBitIdentical) {
  const RunResult dyn = run_diamond(SchedulerKind::Dynamic, GetParam());
  const RunResult sta = run_diamond(SchedulerKind::Static, GetParam());
  EXPECT_EQ(dyn.sink_a, sta.sink_a);
  EXPECT_EQ(dyn.sink_b, sta.sink_b);
  EXPECT_EQ(dyn.transfers, sta.transfers);
  EXPECT_EQ(dyn.sink_a.size(), 200u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerEquivalence,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

// ---------------------------------------------------------------------------
// Transfer accounting / observers
// ---------------------------------------------------------------------------

TEST(KernelObservers, TransferObserverSeesEveryTransfer) {
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 7}, {"period", 2}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), sink.in("in"));
  nl.finalize();

  Simulator sim(nl);
  std::uint64_t observed = 0;
  sim.observe_transfers([&observed](const Connection&, Cycle) { ++observed; });
  sim.run(40);
  EXPECT_EQ(observed, 7u);
}

TEST(KernelObservers, DotExportContainsAllInstances) {
  Netlist nl;
  nl.make<Source>("alpha", params({{"kind", "token"}}));
  nl.make<Sink>("beta", Params());
  nl.connect(nl.get("alpha").out("out"), nl.get("beta").in("in"));
  nl.finalize();
  std::ostringstream dot;
  nl.write_dot(dot);
  const std::string s = dot.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_NE(s.find("->"), std::string::npos);
}

}  // namespace

// ---------------------------------------------------------------------------
// VCD tracing (visualizer integration)
// ---------------------------------------------------------------------------

#include "liberty/core/vcd.hpp"

namespace {

TEST(KernelObservers, VcdTraceContainsHeaderAndActivity) {
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", liberty::test::params(
                 {{"kind", "counter"}, {"count", 5}, {"period", 3}}));
  auto& q = nl.make<Queue>("q", liberty::test::params({{"depth", 2}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), q.in("in"));
  nl.connect(q.out("out"), sink.in("in"));
  nl.finalize();

  std::ostringstream vcd;
  liberty::core::VcdTracer tracer(nl, vcd);
  Simulator sim(nl);
  tracer.attach(sim);
  sim.run(30);
  tracer.finish();

  const std::string s = vcd.str();
  EXPECT_NE(s.find("$timescale"), std::string::npos);
  EXPECT_NE(s.find("$var wire 1"), std::string::npos);
  EXPECT_NE(s.find("src_out_0___to__q_in_0_"), std::string::npos);
  // Activity: at least one rising edge and one timestamp.
  EXPECT_NE(s.find("\n1!"), std::string::npos);
  EXPECT_NE(s.find("\n#"), std::string::npos);
  // Wires fall after the run.
  EXPECT_NE(s.rfind("0!"), std::string::npos);
}

}  // namespace
