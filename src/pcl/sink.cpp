#include "liberty/pcl/sink.hpp"

#include "liberty/core/opt.hpp"
#include "liberty/pcl/payloads.hpp"

namespace liberty::pcl {

using liberty::core::AckMode;
using liberty::core::Params;

Sink::Sink(const std::string& name, const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::AutoAccept)),
      stop_after_(static_cast<std::uint64_t>(params.get_int("stop_after", 0))) {
}

void Sink::end_of_cycle() {
  for (std::size_t i = 0; i < in_.width(); ++i) {
    if (!in_.transferred(i)) continue;
    const liberty::Value& v = in_.data(i);
    ++consumed_;
    stats().bind(consumed_stat_, "consumed");
    consumed_stat_->inc();
    if (auto stamped = v.try_as<Stamped>()) {
      stats().bind(latency_stat_, "latency", /*buckets=*/256, /*width=*/1.0);
      latency_stat_->add(static_cast<double>(now() - stamped->born));
    }
    if (hook_) hook_(v, now());
  }
  if (stop_after_ != 0 && consumed_ >= stop_after_) request_stop();
}

void Sink::declare_opt(liberty::core::OptTraits& traits) const {
  traits.sleepable();
}

bool Sink::can_sleep() const {
  // Sink drives nothing, and a transfer into an asleep module still runs
  // its end_of_cycle (the gate marks transfer endpoints), so stats and the
  // stop_after trigger are preserved.
  return true;
}

void Sink::save_state(liberty::core::StateWriter& w) const {
  w.put_u64(consumed_);
}

void Sink::load_state(liberty::core::StateReader& r) {
  consumed_ = r.get_u64();
}

}  // namespace liberty::pcl
