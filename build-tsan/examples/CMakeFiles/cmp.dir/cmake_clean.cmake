file(REMOVE_RECURSE
  "CMakeFiles/cmp.dir/cmp.cpp.o"
  "CMakeFiles/cmp.dir/cmp.cpp.o.d"
  "cmp"
  "cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
