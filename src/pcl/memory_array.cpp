#include "liberty/pcl/memory_array.hpp"

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"

namespace liberty::pcl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;

MemoryArray::MemoryArray(const std::string& name, const Params& params)
    : Module(name),
      req_(add_in("req", AckMode::Managed, 0)),
      resp_(add_out("resp", 0)),
      latency_(static_cast<std::uint64_t>(params.get_int("latency", 1))),
      mshrs_(static_cast<std::size_t>(params.get_int("mshrs", 4))),
      ports_(static_cast<std::size_t>(params.get_int("ports", 1))) {
  if (latency_ == 0) {
    throw liberty::ElaborationError("pcl.memory_array '" + name +
                                    "': latency must be >= 1");
  }
}

void MemoryArray::cycle_start(Cycle c) {
  const bool head_ready = !pending_.empty() && pending_.front().ready <= c;
  for (std::size_t i = 0; i < resp_.width(); ++i) {
    if (head_ready && i == pending_.front().src_ep) {
      resp_.send_at(i, pending_.front().resp);
    } else {
      resp_.idle(i);
    }
  }

  std::size_t budget =
      pending_.size() < mshrs_ ? std::min(ports_, mshrs_ - pending_.size())
                               : 0;
  for (std::size_t i = 0; i < req_.width(); ++i) {
    if (budget > 0) {
      req_.ack(i);
      --budget;
    } else {
      req_.nack(i);
      stats().counter("busy_stalls").inc();
    }
  }
}

void MemoryArray::end_of_cycle() {
  if (!pending_.empty() && pending_.front().src_ep < resp_.width() &&
      resp_.transferred(pending_.front().src_ep)) {
    pending_.pop_front();
  }
  for (std::size_t i = 0; i < req_.width(); ++i) {
    if (!req_.transferred(i)) continue;
    const auto r = req_.data(i).as<MemReq>();
    std::int64_t out_data = 0;
    if (r->op == MemReq::Op::Read) {
      out_data = peek(r->addr);
      stats().counter("reads").inc();
    } else {
      store_[r->addr] = r->data;
      stats().counter("writes").inc();
    }
    pending_.push_back(Pending{
        liberty::Value::make<MemResp>(r->tag, out_data,
                                      r->op == MemReq::Op::Write),
        now() + latency_, i});
  }
}

void MemoryArray::declare_deps(Deps& deps) const {
  deps.state_only(resp_);
  deps.state_only(req_);
}

}  // namespace liberty::pcl
