// ParallelScheduler: wave-scheduled multi-threaded fixed-point resolution.
//
// The StaticScheduler's SCC condensation DAG already encodes everything the
// paper's §2.3 analyzability claim promises: which channel resolutions are
// independent.  This scheduler turns that independence into parallelism:
//
//   1. Levelize: wave(scc) = 1 + max(wave(predecessor scc)).  All SCCs in a
//      wave are mutually independent.
//   2. Coarsen: SCCs of a wave are grouped into clusters so that all nodes
//      whose execution touches the same module land in one cluster — a
//      module's react() is never invoked from two threads in the same wave.
//      Kernel-driven AutoAccept acks are homed on the connection's producer,
//      and gated connections co-schedule producer and consumer (their
//      deferred-ack protocol crosses the connection).
//   3. Execute: each wave's clusters are distributed over a persistent
//      std::jthread pool through a chunked atomic work index; the main
//      thread participates.  A wave barrier separates writes from reads of
//      dependent channels; cross-wave channel observation is safe because
//      Connection's control state is atomic.
//
// See docs/scheduling.md for the full invariant discussion.
#include <algorithm>
#include <chrono>
#include <numeric>
#include <unordered_map>

#include "liberty/core/scheduler.hpp"
#include "liberty/support/error.hpp"

namespace liberty::core {

namespace {
[[nodiscard]] inline double seconds_between(
    std::chrono::steady_clock::time_point a,
    std::chrono::steady_clock::time_point b) noexcept {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

ParallelScheduler::ParallelScheduler(Netlist& netlist, unsigned threads)
    : AnalyzedScheduler(netlist) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads_ = threads;
  build_waves();
  lane_busy_.assign(threads_, 0.0);
  for (unsigned i = 1; i < threads_; ++i) {
    pool_.emplace_back([this, i] { worker_main(i); });
  }
}

ParallelScheduler::~ParallelScheduler() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  pool_.clear();  // jthreads join on destruction
}

void ParallelScheduler::build_waves() {
  const auto& sccs = graph_.sccs();
  const auto& scc_of = graph_.scc_of();
  const std::size_t n_scc = sccs.size();
  if (n_scc == 0) return;

  // 1. Levelize the condensation DAG.  SCCs are stored in topological
  // order, so predecessors already have their wave when we reach a node.
  std::vector<std::uint32_t> wave_of(n_scc, 0);
  std::uint32_t max_wave = 0;
  for (std::size_t i = 0; i < n_scc; ++i) {
    std::uint32_t w = 0;
    for (ChannelId ch : sccs[i]) {
      for (ChannelId p : graph_.preds()[ch]) {
        const std::uint32_t ps = scc_of[p];
        if (ps != i) w = std::max(w, wave_of[ps] + 1);
      }
    }
    wave_of[i] = w;
    max_wave = std::max(max_wave, w);
  }

  // 2. Union-find over modules: every module touched by one SCC must be
  // executed by the same cluster, and gated connections co-schedule their
  // producer and consumer (the deferred-ack handshake writes both sides).
  std::vector<std::uint32_t> parent(netlist_.module_count());
  std::iota(parent.begin(), parent.end(), 0u);
  auto find = [&parent](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&parent, &find](std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  };
  for (std::size_t i = 0; i < n_scc; ++i) {
    const auto first =
        static_cast<std::uint32_t>(graph_.home_module(sccs[i][0])->id());
    for (ChannelId ch : sccs[i]) {
      unite(first, static_cast<std::uint32_t>(graph_.home_module(ch)->id()));
    }
  }
  for (const Connection* c : conn_tape_) {
    if (c->has_transfer_gate()) {
      unite(static_cast<std::uint32_t>(c->producer()->id()),
            static_cast<std::uint32_t>(c->consumer()->id()));
    }
  }
  // Fused chains share per-chain sweep state, and a sweep resolves
  // channels homed on every member, so all members must execute on one
  // thread per wave.
  if (plan_ != nullptr) {
    for (const OptPlan::Chain& ch : plan_->chains) {
      const auto first = static_cast<std::uint32_t>(ch.members.front()->id());
      for (const Module* m : ch.members) {
        unite(first, static_cast<std::uint32_t>(m->id()));
      }
    }
  }

  // 3. Per-wave clusters keyed by the home-module union root, SCCs kept in
  // topological (index) order for determinism.
  std::vector<std::vector<std::uint32_t>> wave_sccs(max_wave + 1);
  for (std::size_t i = 0; i < n_scc; ++i) {
    wave_sccs[wave_of[i]].push_back(static_cast<std::uint32_t>(i));
  }
  waves_.clear();
  clusters_.clear();
  std::unordered_map<std::uint32_t, std::uint32_t> by_root;
  for (std::uint32_t w = 0; w <= max_wave; ++w) {
    by_root.clear();
    Wave wv;
    wv.first = static_cast<std::uint32_t>(clusters_.size());
    for (std::uint32_t s : wave_sccs[w]) {
      const std::uint32_t root = find(
          static_cast<std::uint32_t>(graph_.home_module(sccs[s][0])->id()));
      const auto it = by_root.find(root);
      if (it == by_root.end()) {
        by_root.emplace(root, static_cast<std::uint32_t>(clusters_.size()));
        clusters_.push_back(Cluster{{s}});
      } else {
        clusters_[it->second].sccs.push_back(s);
      }
    }
    wv.last = static_cast<std::uint32_t>(clusters_.size());
    waves_.push_back(wv);
  }
}

std::size_t ParallelScheduler::max_wave_width() const noexcept {
  std::size_t best = 0;
  for (const Wave& w : waves_) {
    best = std::max(best, static_cast<std::size_t>(w.last - w.first));
  }
  return best;
}

void ParallelScheduler::run_cluster(const Cluster& cl) {
  const auto& sccs = graph_.sccs();
  const bool gating = gate_.enabled();
  for (std::uint32_t s : cl.sccs) {
    // Quiescence gating: SCC state is only touched by this cluster (its
    // channels' home modules all share this cluster's union root), so the
    // decision is single-threaded per wave; boundary channels belong to
    // earlier waves and are stable behind the wave barrier.
    if (gating && gate_.try_sleep(s, cycle_)) continue;
    if (sccs[s].size() == 1 && !graph_.self_loop(s)) {
      execute_node(sccs[s][0]);
    } else {
      run_scc(s);
    }
  }
}

void ParallelScheduler::process_clusters() {
  while (true) {
    const std::uint32_t begin = next_.fetch_add(
        static_cast<std::uint32_t>(job_chunk_), std::memory_order_relaxed);
    if (begin >= job_last_) break;
    const auto end = std::min<std::uint32_t>(
        begin + static_cast<std::uint32_t>(job_chunk_), job_last_);
    for (std::uint32_t i = begin; i < end; ++i) run_cluster(clusters_[i]);
  }
}

void ParallelScheduler::dispatch_wave(const Wave& w, std::size_t wave_index,
                                      Cycle cycle) {
  using clock = std::chrono::steady_clock;
  const bool profiling = probe_ != nullptr;
  clock::time_point wave_t0;
  {
    std::lock_guard lk(mu_);
    job_first_ = w.first;
    job_last_ = w.last;
    job_chunk_ = std::max<std::size_t>(
        1, (w.last - w.first) / (static_cast<std::size_t>(threads_) * 2));
    job_profile_ = profiling;
    next_.store(w.first, std::memory_order_relaxed);
    workers_active_ = static_cast<unsigned>(pool_.size());
    ++job_epoch_;
    if (profiling) {
      std::fill(lane_busy_.begin(), lane_busy_.end(), 0.0);
      wave_t0 = clock::now();
    }
  }
  cv_work_.notify_all();

  std::exception_ptr err;
  clock::time_point main_t0;
  if (profiling) main_t0 = clock::now();
  try {
    process_clusters();
  } catch (...) {
    err = std::current_exception();
  }
  if (profiling) lane_busy_[0] = seconds_between(main_t0, clock::now());

  {
    std::unique_lock lk(mu_);
    cv_done_.wait(lk, [this] { return workers_active_ == 0; });
    if (!err && worker_error_) err = worker_error_;
    worker_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);

  if (profiling) {
    // Workers are idle again: lane_busy_ is complete and stable.
    const double wall = seconds_between(wave_t0, clock::now());
    probe_->on_wave(cycle, wave_index, w.last - w.first, wall);
    for (unsigned lane = 0; lane < threads_; ++lane) {
      probe_->on_lane(cycle, wave_index, lane, lane_busy_[lane]);
    }
  }
}

void ParallelScheduler::worker_main(unsigned lane) {
  using clock = std::chrono::steady_clock;
  std::uint64_t seen = 0;
  while (true) {
    bool profiling = false;
    {
      std::unique_lock lk(mu_);
      cv_work_.wait(lk, [&] { return shutdown_ || job_epoch_ != seen; });
      if (shutdown_) return;
      seen = job_epoch_;
      profiling = job_profile_;
    }
    detail::ResolveCtx& ctx = detail::t_resolve_ctx;
    const std::uint64_t r0 = ctx.resolutions;
    const std::uint64_t k0 = ctx.reacts;
    const std::uint64_t d0 = ctx.defaults;
    clock::time_point t0;
    if (profiling) {
      ctx.size_profile(module_tape_.size());
      ctx.timing = true;
      t0 = clock::now();
    }
    std::exception_ptr err;
    try {
      process_clusters();
    } catch (...) {
      err = std::current_exception();
    }
    const double busy =
        profiling ? seconds_between(t0, clock::now()) : 0.0;
    ctx.timing = false;
    {
      std::lock_guard lk(mu_);
      detail::ResolveCtx delta;
      delta.resolutions = ctx.resolutions - r0;
      delta.reacts = ctx.reacts - k0;
      delta.defaults = ctx.defaults - d0;
      delta.transferred = std::move(ctx.transferred);
      absorb(delta);
      ctx.transferred.clear();
      if (profiling) {
        lane_busy_[lane] += busy;
        flush_profile(ctx);
      }
      if (err && !worker_error_) worker_error_ = err;
      if (--workers_active_ == 0) cv_done_.notify_one();
    }
  }
}

void ParallelScheduler::visit_counters(const CounterVisitor& visit) const {
  AnalyzedScheduler::visit_counters(visit);
  visit("threads", threads_);
  visit("waves", waves_.size());
  visit("clusters", clusters_.size());
  visit("max_wave_width", max_wave_width());
  visit("waves_dispatched", waves_dispatched_);
  visit("waves_inline", waves_inline_);
}

void ParallelScheduler::resolve_cycle() {
  for (std::size_t wi = 0; wi < waves_.size(); ++wi) {
    const Wave& w = waves_[wi];
    const std::uint32_t count = w.last - w.first;
    if (count == 0) continue;
    // Dispatch only waves with real concurrency; narrow waves run inline
    // (a cross-thread handoff costs more than a small cluster).
    if (threads_ <= 1 || pool_.empty() || count < 2) {
      for (std::uint32_t i = w.first; i < w.last; ++i) {
        run_cluster(clusters_[i]);
      }
      ++waves_inline_;
    } else {
      dispatch_wave(w, wi, cycle_);
      ++waves_dispatched_;
    }
  }
  cleanup_unresolved();
}

}  // namespace liberty::core
