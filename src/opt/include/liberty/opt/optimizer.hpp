// liberty::opt — the elaboration-time netlist optimizer.
//
// Implements the paper's §2.3 claim that the simulator *constructor* "can
// perform optimizations across module boundaries that a hand-written
// simulator would get for free".  optimize() runs after elaboration
// (Netlist::finalize) and before simulator construction, analyzes the
// netlist against the facts modules declare (Module::declare_opt), and
// attaches an annotation plan (core::OptPlan) the schedulers consume.  The
// netlist itself is never mutated — every connection still resolves every
// cycle with its -O0 value, which is what keeps all three schedulers
// bit-identical on transfer traces, state digests and stats (proved by the
// liberty_testing oracle and the fuzz sweep).
//
// Passes (see docs/optimizer.md for the per-pass soundness arguments):
//
//   constprop  fixed-point constant propagation over channels.  Seeds:
//              declared constant forwards and the always-acked inputs of
//              pass-through modules with unconnected outputs.  Rules:
//              identity pass-through forwards, pass-through ack chaining,
//              and gate-free AutoAccept ack := enable.  Constant channels
//              are pre-resolved by the kernel at the top of each cycle.
//   dce        dead-logic elision.  A stateless, pure module all of whose
//              driven channels are constant can never influence anything
//              observable; the schedulers skip its hooks entirely.  Stat-
//              or VCD-observed modules are never pure, so never elided.
//   fuse       stateless-chain fusion.  Maximal linear chains of declared
//              pass-through modules collapse into one fused handler: a
//              single forward sweep resolves every member's output and a
//              single backward sweep resolves every member's ack.
//   gate       quiescence gating (plan flag; the schedulers derive their
//              per-SCC candidate sets).  SCCs whose sleepable drivers are
//              quiescent and whose boundary inputs are unchanged replay
//              last cycle's channel values without running any handler.
//
// Every pass is individually disableable (OptOptions); -O0 disables all,
// -O1 enables constprop+dce, -O2 (the default) everything.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "liberty/core/netlist.hpp"

namespace liberty::opt {

/// Pass selection.  `level` sets the defaults; the per-pass flags are
/// applied on top (so a flag can disable one pass of -O2 or enable one
/// pass at -O0).
struct OptOptions {
  int level = 2;  // 0 = off, 1 = constprop+dce, 2 = +fuse+gate

  bool constprop = true;
  bool dce = true;
  bool fuse = true;
  bool gate = true;

  /// Options with the level folded into the per-pass flags.
  [[nodiscard]] static OptOptions for_level(int level) {
    OptOptions o;
    o.level = level;
    o.constprop = o.dce = level >= 1;
    o.fuse = o.gate = level >= 2;
    return o;
  }
};

/// What the optimizer did, for reports and the lss_run one-line summary.
struct OptReport {
  int level = 0;
  std::size_t const_forwards = 0;   // constant forward channels
  std::size_t const_backwards = 0;  // constant backward channels
  std::size_t elided_modules = 0;
  std::size_t fused_chains = 0;
  std::size_t fused_modules = 0;    // members across all chains
  std::size_t sleepable_modules = 0;
  bool gating = false;

  /// Detailed per-item lines (module/connection names), for --opt-report.
  std::string detail;

  [[nodiscard]] std::string summary() const;
};

/// Run the pass pipeline over a finalized netlist and attach the resulting
/// plan (Netlist::set_opt_plan).  Must run before any scheduler is
/// constructed.  With every pass disabled the plan is not attached at all
/// (schedulers take their zero-overhead -O0 path).
OptReport optimize(core::Netlist& netlist, const OptOptions& options = {});

/// Graphviz DOT dump annotated with the attached plan's conclusions
/// (elided modules dashed, fused chains grouped by color, constant
/// connections dotted, sleepable modules noted).  With no plan attached
/// this degrades to the structure Netlist::write_dot prints.
void write_annotated_dot(const core::Netlist& netlist, std::ostream& os);

}  // namespace liberty::opt
