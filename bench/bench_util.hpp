// Shared helpers for the experiment harness (one binary per experiment in
// DESIGN.md; EXPERIMENTS.md records the outputs).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/lss/elaborator.hpp"
#include "liberty/core/registry.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/mpl/mpl.hpp"
#include "liberty/nil/nil.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/upl/upl.hpp"

namespace liberty::bench {

/// Registry with every component library.
inline core::ModuleRegistry& registry() {
  static core::ModuleRegistry r = [] {
    core::ModuleRegistry reg;
    pcl::register_pcl(reg);
    upl::register_upl(reg);
    ccl::register_ccl(reg);
    mpl::register_mpl(reg);
    nil::register_nil(reg);
    return reg;
  }();
  return r;
}

/// One column of a scheduler comparison matrix.  `threads` applies to the
/// parallel scheduler only (0 = hardware concurrency).
struct SchedulerSpec {
  std::string label;
  core::SchedulerKind kind;
  unsigned threads = 0;
};

/// The standard comparison matrix: dynamic baseline, static sequential,
/// wave-parallel at `parallel_threads`.
inline std::vector<SchedulerSpec> scheduler_matrix(
    unsigned parallel_threads = 0) {
  return {{"dynamic", core::SchedulerKind::Dynamic, 0},
          {"static", core::SchedulerKind::Static, 0},
          {"parallel", core::SchedulerKind::Parallel, parallel_threads}};
}

/// Wall-clock seconds for a callable.
template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Markdown-style table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void print() const {
    auto line = [](const std::vector<std::string>& cells) {
      std::printf("|");
      for (const auto& c : cells) std::printf(" %-14s |", c.c_str());
      std::printf("\n");
    };
    line(headers_);
    std::printf("|");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%s|", std::string(16, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}
inline std::string fmt(std::uint64_t v) { return std::to_string(v); }

/// Tiny streaming JSON writer for the BENCH_*.json artifacts.  Handles
/// comma placement; callers balance begin/end themselves.
class JsonWriter {
 public:
  explicit JsonWriter(FILE* out) : out_(out) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array(const char* key = nullptr) { open('[', key); }
  void end_array() { close(']'); }

  void field(const char* key, const std::string& v) {
    prefix(key);
    std::fprintf(out_, "\"%s\"", escaped(v).c_str());
  }
  void field(const char* key, const char* v) { field(key, std::string(v)); }
  void field(const char* key, double v) {
    prefix(key);
    std::fprintf(out_, "%.6g", v);
  }
  void field(const char* key, std::uint64_t v) {
    prefix(key);
    std::fprintf(out_, "%llu", static_cast<unsigned long long>(v));
  }
  void field(const char* key, unsigned v) {
    field(key, static_cast<std::uint64_t>(v));
  }

  /// Begin an object as an element/value (for arrays of objects).
  void object(const char* key = nullptr) { open('{', key); }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  void prefix(const char* key) {
    if (need_comma_) std::fprintf(out_, ",");
    std::fprintf(out_, "\n%*s", static_cast<int>(2 * depth_), "");
    if (key != nullptr) std::fprintf(out_, "\"%s\": ", key);
    need_comma_ = true;
  }
  void open(char bracket, const char* key = nullptr) {
    if (depth_ > 0) prefix(key);
    std::fprintf(out_, "%c", bracket);
    ++depth_;
    need_comma_ = false;
  }
  void close(char bracket) {
    --depth_;
    std::fprintf(out_, "\n%*s%c", static_cast<int>(2 * depth_), "", bracket);
    need_comma_ = true;
    if (depth_ == 0) std::fprintf(out_, "\n");
  }

  FILE* out_;
  std::size_t depth_ = 0;
  bool need_comma_ = false;
};

/// Snapshot of a scheduler's introspection counters (visit_counters),
/// taken after a run so it can be emitted into a JSON record later.
inline std::vector<std::pair<std::string, std::uint64_t>> kernel_counters(
    const core::SchedulerBase& sched) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  sched.visit_counters([&out](std::string_view name, std::uint64_t v) {
    out.emplace_back(std::string(name), v);
  });
  return out;
}

/// Emit counters captured by kernel_counters() into the current JSON
/// object, prefixed "kernel." to keep names collision-free.
inline void emit_kernel_counters(
    JsonWriter& json,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  for (const auto& [name, v] : counters) {
    json.field(("kernel." + name).c_str(), v);
  }
}

}  // namespace liberty::bench
