file(REMOVE_RECURSE
  "CMakeFiles/bench_sos.dir/bench_sos.cpp.o"
  "CMakeFiles/bench_sos.dir/bench_sos.cpp.o.d"
  "bench_sos"
  "bench_sos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
