// Flit: the unit of network transfer in the CCL.
#pragma once

#include <cstdint>
#include <string>

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/value.hpp"

namespace liberty::ccl {

/// A single-flit packet (multi-flit packets are modeled as `length`
/// back-to-back flits sharing a packet id; the router reserves the chosen
/// output for the whole packet).  Routable by destination so PCL steering
/// primitives can carry flits unmodified.
struct Flit final : Payload, pcl::Routable {
  Flit(std::uint64_t packet_, std::size_t src_, std::size_t dst_,
       std::uint64_t born_, std::size_t vc_ = 0, bool head_ = true,
       bool tail_ = true, liberty::Value body_ = {})
      : packet(packet_),
        src(src_),
        dst(dst_),
        born(born_),
        vc(vc_),
        head(head_),
        tail(tail_),
        body(std::move(body_)) {}

  std::uint64_t packet;
  std::size_t src;
  std::size_t dst;
  std::uint64_t born;   // injection cycle (end-to-end latency measurement)
  std::size_t vc;       // virtual channel id
  bool head;
  bool tail;
  std::uint64_t hops = 0;
  liberty::Value body;  // opaque payload (e.g. an upl::LineReq in a CMP)

  [[nodiscard]] std::size_t route_key() const override { return dst; }
  [[nodiscard]] std::string describe() const override {
    return "flit p" + std::to_string(packet) + " " + std::to_string(src) +
           "->" + std::to_string(dst);
  }

  /// Copy with one more hop recorded (flits are immutable on the wire).
  [[nodiscard]] std::shared_ptr<const Flit> hopped() const {
    auto f = std::make_shared<Flit>(*this);
    ++f->hops;
    return f;
  }
};

}  // namespace liberty::ccl
