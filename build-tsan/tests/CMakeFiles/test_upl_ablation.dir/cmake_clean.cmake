file(REMOVE_RECURSE
  "CMakeFiles/test_upl_ablation.dir/test_upl_ablation.cpp.o"
  "CMakeFiles/test_upl_ablation.dir/test_upl_ablation.cpp.o.d"
  "test_upl_ablation"
  "test_upl_ablation.pdb"
  "test_upl_ablation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upl_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
