// Arbiter: grants one of N competing inputs access to a shared output.
//
// The paper's poster-child primitive: "the same arbiter module can be used
// in CCL to control access to network buffers and links, and in UPL to
// regulate access to synchronization locks" (§3.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"

namespace liberty::pcl {

/// N-input, 1-output arbiter.  Combinational: the winner's value appears on
/// the output in the same cycle; the winner is acked iff the output is.
///
/// Parameters:
///   policy   "round_robin" | "priority" (lowest index wins) | "lru"
///            (least-recently-granted wins)                    [round_robin]
///
/// Stats: grants, grants_in<i>, conflicts (cycles with >1 requester).
class Arbiter : public liberty::core::Module {
 public:
  Arbiter(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void react() override;
  void end_of_cycle() override;
  void init() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

 private:
  [[nodiscard]] int select(const std::vector<std::size_t>& requesters) const;

  liberty::core::Port& in_;
  liberty::core::Port& out_;
  std::string policy_;
  std::size_t rr_next_ = 0;
  std::vector<std::uint64_t> last_grant_;  // for lru
  int winner_ = -2;                        // -2 undecided, -1 none
  bool losers_nacked_ = false;

  // Resolved-once stat handles (see StatSet::bind).
  liberty::Counter* grants_stat_ = nullptr;
  liberty::Counter* conflicts_stat_ = nullptr;
  std::vector<liberty::Counter*> grants_in_stat_;  // indexed by input
};

}  // namespace liberty::pcl
