// Native codegen, part 2: the toolchain driver (only compiled when
// LIBERTY_NATIVE_CODEGEN is ON).
//
// Responsibilities: identify the host compiler, content-address the
// artifact on (generated source, compiler identification, -O level),
// reuse a cached shared object when one exists, otherwise compile and
// publish it atomically, then dlopen and resolve the ln_* entry points.
// Every failure mode — no compiler, compile error, dlopen or symbol
// failure, ABI mismatch, or the LIBERTY_NATIVE_FORCE_FAIL=1 test override
// — is reported as one reason string; the scheduler degrades to bytecode.
//
// Hostile-toolchain hardening (docs/codegen.md, "Cache hygiene"):
//
//   * every compiler invocation runs in its own process group under a
//     wall-clock deadline (LIBERTY_NATIVE_COMPILE_TIMEOUT_MS, default
//     60000); a hung driver is SIGKILLed group-wide, counted, and retried
//     once after a short exponential backoff before the run degrades;
//   * each published artifact carries a sidecar manifest (<so>.meta:
//     ABI version, byte size, FNV-1a content hash) written with the same
//     tmp+rename discipline.  A cache hit validates the manifest before
//     dlopen; a truncated, tampered, stale-ABI, or manifest-less artifact
//     is *quarantined* — renamed aside, never deleted, never trusted —
//     and the run degrades to bytecode with a single diagnostic.
#include <dlfcn.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "liberty/gen/native.hpp"
#include "native_impl.hpp"

namespace liberty::gen {

namespace fs = std::filesystem;

namespace {

std::string quoted(const std::string& s) { return "'" + s + "'"; }

std::string compiler_path() {
  if (const char* env = std::getenv("LIBERTY_NATIVE_CXX");
      env != nullptr && env[0] != '\0') {
    return env;
  }
#ifdef LIBERTY_NATIVE_CXX_DEFAULT
  return LIBERTY_NATIVE_CXX_DEFAULT;
#else
  return "c++";
#endif
}

int backend_opt_level() {
  if (const char* env = std::getenv("LIBERTY_NATIVE_OPT");
      env != nullptr && env[0] != '\0') {
    const int v = std::atoi(env);
    if (v >= 0 && v <= 3) return v;
  }
  const int v = native_options().backend_opt;
  return v >= 0 && v <= 3 ? v : 2;
}

fs::path cache_dir() {
  if (const std::string& dir = native_options().cache_dir; !dir.empty()) {
    return dir;
  }
  if (const char* env = std::getenv("LIBERTY_NATIVE_CACHE_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return fs::temp_directory_path() / "liberty-native-cache";
}

/// First line of `<cxx> --version` — the cache-key ingredient that retires
/// stale artifacts across compiler upgrades.  Empty on failure.
std::string compiler_identification(const std::string& cxx) {
  FILE* pipe = ::popen((quoted(cxx) + " --version 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return {};
  char buf[512];
  std::string line;
  if (std::fgets(buf, sizeof buf, pipe) != nullptr) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
  }
  ::pclose(pipe);
  return line;
}

std::string hex_key(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

std::int64_t compile_timeout_ms() {
  if (const char* env = std::getenv("LIBERTY_NATIVE_COMPILE_TIMEOUT_MS");
      env != nullptr && env[0] != '\0') {
    const long long v = std::atoll(env);
    if (v > 0) return v;
  }
  return 60000;
}

/// Run `command` through /bin/sh under a wall-clock deadline.  The child
/// becomes its own process group so a deadline kill takes out the whole
/// compiler pipeline (driver, cc1plus, ld), not just the shell.  Returns
/// the shell's exit status, or -1 (with `timed_out` set) on a kill.
int run_with_deadline(const std::string& command, std::int64_t timeout_ms,
                      bool& timed_out) {
  timed_out = false;
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    ::setpgid(0, 0);
    ::execl("/bin/sh", "sh", "-c", command.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::setpgid(pid, pid);  // best-effort; the child races us doing the same
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::int64_t poll_us = 1000;
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
    if (r < 0 && errno != EINTR) return -1;
    if (std::chrono::steady_clock::now() >= deadline) {
      timed_out = true;
      ::kill(-pid, SIGKILL);
      ::kill(pid, SIGKILL);  // in case the setpgid race was lost
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(poll_us));
    if (poll_us < 20000) poll_us *= 2;
  }
}

// --- Artifact manifests -----------------------------------------------------
//
// The content-addressed *name* proves which source the artifact was built
// from; the manifest proves the file on disk is the one that was published
// — a crash or disk fault mid-copy, a partially synced cache share, or a
// hand-edited file all fail validation and get renamed aside.

constexpr std::string_view kManifestHeader = "liberty-native-manifest 1";

fs::path manifest_path(const fs::path& so) { return so.string() + ".meta"; }

/// FNV-1a over the file's bytes.  False when the file cannot be read.
bool hash_file(const fs::path& p, std::uint64_t& hash, std::uint64_t& size) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  hash = 1469598103934665603ull;
  size = 0;
  char buf[4096];
  while (in) {
    in.read(buf, sizeof buf);
    const std::streamsize n = in.gcount();
    if (n <= 0) break;
    for (std::streamsize i = 0; i < n; ++i) {
      hash ^= static_cast<unsigned char>(buf[i]);
      hash *= 1099511628211ull;
    }
    size += static_cast<std::uint64_t>(n);
  }
  return true;
}

/// Best-effort: a manifest that cannot be written costs one future
/// quarantine+recompile, never the current run.
void write_manifest(const fs::path& so) {
  std::uint64_t hash = 0;
  std::uint64_t size = 0;
  if (!hash_file(so, hash, size)) return;
  const fs::path meta = manifest_path(so);
  const fs::path tmp = meta.string() + ".tmp." +
                       std::to_string(static_cast<unsigned>(::getpid()));
  {
    std::ofstream out(tmp);
    out << kManifestHeader << "\n"
        << "abi " << kLnAbiVersion << "\n"
        << "size " << size << "\n"
        << "fnv " << hex_key(hash) << "\n";
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, meta, ec);
  if (ec) fs::remove(tmp, ec);
}

/// Validate a cached artifact against its sidecar manifest.  On failure
/// `reason` says exactly what disqualified it (the shared message path of
/// the lss_run / rack_sim degradation diagnostic).
bool validate_manifest(const fs::path& so, std::string& reason) {
  std::ifstream in(manifest_path(so));
  if (!in) {
    reason = "no manifest sidecar (artifact predates the manifest format "
             "or was copied in by hand)";
    return false;
  }
  std::string header;
  std::getline(in, header);
  if (header != kManifestHeader) {
    reason = "unrecognized manifest header '" + header + "'";
    return false;
  }
  unsigned long long abi = 0;
  unsigned long long size = 0;
  std::uint64_t hash = 0;
  bool have_abi = false;
  bool have_size = false;
  bool have_hash = false;
  std::string field;
  while (in >> field) {
    if (field == "abi" && (in >> abi)) {
      have_abi = true;
    } else if (field == "size" && (in >> size)) {
      have_size = true;
    } else if (field == "fnv") {
      std::string hex;
      if (in >> hex && !hex.empty()) {
        char* end = nullptr;
        hash = std::strtoull(hex.c_str(), &end, 16);
        have_hash = end != nullptr && *end == '\0';
      }
    }
  }
  if (!have_abi || !have_size || !have_hash) {
    reason = "manifest is missing fields (torn manifest write?)";
    return false;
  }
  if (abi != kLnAbiVersion) {
    reason = "manifest records ABI v" + std::to_string(abi) +
             ", host expects v" + std::to_string(kLnAbiVersion);
    return false;
  }
  std::uint64_t actual_hash = 0;
  std::uint64_t actual_size = 0;
  if (!hash_file(so, actual_hash, actual_size)) {
    reason = "artifact unreadable";
    return false;
  }
  if (actual_size != size) {
    reason = "truncated: artifact is " + std::to_string(actual_size) +
             " bytes, manifest records " + std::to_string(size);
    return false;
  }
  if (actual_hash != hash) {
    reason = "content hash mismatch (corrupt or tampered artifact)";
    return false;
  }
  return true;
}

/// Rename a distrusted artifact (and its manifest) aside.  Kept, not
/// deleted: the bytes are evidence.  A later run with the same cache key
/// recompiles into the now-vacant slot.
void quarantine_artifact(const fs::path& so) {
  std::error_code ec;
  fs::rename(so, so.string() + ".quarantined", ec);
  if (ec) fs::remove(so, ec);  // rename-proof filesystems: evict instead
  fs::rename(manifest_path(so), manifest_path(so).string() + ".quarantined",
             ec);
  detail::cache_quarantine_counter().fetch_add(1, std::memory_order_relaxed);
}

bool resolve_symbols(LoadedImage& img, std::string& err) {
  const auto sym = [&](const char* name) -> void* {
    void* p = ::dlsym(img.dl, name);
    if (p == nullptr && err.empty()) {
      err = std::string("artifact lacks symbol ") + name;
    }
    return p;
  };
  img.abi_version =
      reinterpret_cast<unsigned (*)()>(sym("ln_abi_version"));
  img.create =
      reinterpret_cast<void* (*)(const LnHost*)>(sym("ln_create"));
  img.destroy = reinterpret_cast<void (*)(void*)>(sym("ln_destroy"));
  img.start = reinterpret_cast<void (*)(void*, unsigned long long)>(
      sym("ln_start"));
  img.resolve = reinterpret_cast<void (*)(void*)>(sym("ln_resolve"));
  img.commit = reinterpret_cast<void (*)(void*, unsigned long long)>(
      sym("ln_commit"));
  img.chans = reinterpret_cast<LnChan* (*)(void*)>(sym("ln_chans"));
  img.export_state =
      reinterpret_cast<void (*)(void*, unsigned)>(sym("ln_export"));
  img.import_state =
      reinterpret_cast<void (*)(void*, unsigned)>(sym("ln_import"));
  img.flush_stats =
      reinterpret_cast<void (*)(void*)>(sym("ln_flush_stats"));
  if (!err.empty()) return false;
  if (const unsigned v = img.abi_version(); v != kLnAbiVersion) {
    err = "artifact ABI v" + std::to_string(v) + ", host expects v" +
          std::to_string(kLnAbiVersion);
    return false;
  }
  return true;
}

bool dlopen_artifact(const fs::path& so, LoadedImage& img, std::string& err) {
  img.dl = ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (img.dl == nullptr) {
    const char* why = ::dlerror();
    err = "dlopen failed: " + std::string(why != nullptr ? why : "unknown");
    return false;
  }
  if (!resolve_symbols(img, err)) {
    ::dlclose(img.dl);
    img = LoadedImage{};
    return false;
  }
  return true;
}

bool compile_artifact(const std::string& cxx, const fs::path& cpp,
                      const fs::path& so, int opt, std::string& err) {
  const fs::path tmp_so = so.string() + ".tmp." +
                          std::to_string(static_cast<unsigned>(::getpid()));
  const fs::path log = so.string() + ".log";
  std::ostringstream cmd;
  cmd << quoted(cxx) << " -std=c++17 -shared -fPIC -O" << opt << " -o "
      << quoted(tmp_so.string()) << " " << quoted(cpp.string()) << " > "
      << quoted(log.string()) << " 2>&1";

  // A hung or transiently failing toolchain gets one retry after a short
  // exponential backoff; a second failure degrades the run to bytecode.
  const std::int64_t timeout_ms = compile_timeout_ms();
  constexpr int kMaxAttempts = 2;
  std::int64_t backoff_ms = 100;
  for (int attempt = 1;; ++attempt) {
    detail::compile_invocation_counter().fetch_add(1,
                                                   std::memory_order_relaxed);
    bool timed_out = false;
    const int rc = run_with_deadline(cmd.str(), timeout_ms, timed_out);
    if (!timed_out && rc == 0) break;

    std::error_code ec;
    fs::remove(tmp_so, ec);
    if (timed_out) {
      detail::compile_timeout_counter().fetch_add(1,
                                                  std::memory_order_relaxed);
      err = "host compiler exceeded the " + std::to_string(timeout_ms) +
            "ms wall-clock deadline (killed)";
    } else {
      std::string first_line;
      std::ifstream in(log);
      std::getline(in, first_line);
      err = "host compiler exited with status " + std::to_string(rc);
      if (!first_line.empty()) err += ": " + first_line;
    }
    if (attempt >= kMaxAttempts) {
      err += " (after " + std::to_string(attempt) + " attempts)";
      return false;
    }
    detail::compile_retry_counter().fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms *= 2;
  }

  // Atomic publication: concurrent processes race to rename, last one
  // wins, every winner's file has identical content (same cache key).
  std::error_code ec;
  fs::rename(tmp_so, so, ec);
  if (ec) {
    err = "cache publish failed: " + ec.message();
    fs::remove(tmp_so, ec);
    return false;
  }
  write_manifest(so);
  return true;
}

}  // namespace

bool native_available() noexcept { return true; }

bool load_native_image(const std::string& source, LoadedImage& img,
                       std::string& err) {
  err.clear();
  if (const char* force = std::getenv("LIBERTY_NATIVE_FORCE_FAIL");
      force != nullptr && force[0] == '1') {
    err = "forced failure (LIBERTY_NATIVE_FORCE_FAIL=1)";
    return false;
  }

  const std::string cxx = compiler_path();
  const std::string id = compiler_identification(cxx);
  if (id.empty()) {
    err = "host compiler '" + cxx + "' not found or not runnable";
    return false;
  }
  const int opt = backend_opt_level();
  const std::uint64_t key = native_cache_key(source, id, opt);

  std::error_code ec;
  const fs::path dir = cache_dir();
  fs::create_directories(dir, ec);
  if (ec) {
    err = "cache directory '" + dir.string() +
          "' not creatable: " + ec.message();
    return false;
  }
  const fs::path so = dir / ("ln_" + hex_key(key) + ".so");
  const fs::path cpp = dir / ("ln_" + hex_key(key) + ".cpp");

  if (fs::exists(so, ec)) {
    // Cache hit, maybe: trust nothing until the manifest checks out.  A
    // distrusted artifact is quarantined and the run degrades to bytecode
    // (recompiling here would mask the corruption — the operator should
    // see the diagnostic once, not an unexplained cache rebuild).
    std::string reason;
    if (!validate_manifest(so, reason)) {
      quarantine_artifact(so);
      err = "cached artifact " + so.filename().string() +
            " failed validation: " + reason + "; quarantined";
      return false;
    }
    if (!dlopen_artifact(so, img, err)) {
      quarantine_artifact(so);
      err = "cached artifact " + so.filename().string() +
            " passed its manifest but failed to load: " + err +
            "; quarantined";
      return false;
    }
    detail::cache_hit_counter().fetch_add(1, std::memory_order_relaxed);
    return true;  // cache hit: no compiler invocation
  }
  err.clear();

  {
    // Keep the source next to the artifact (diagnosis; also what
    // lss_run --dump-native-src points users at).
    const fs::path tmp = cpp.string() + ".tmp." +
                         std::to_string(static_cast<unsigned>(::getpid()));
    std::ofstream out(tmp);
    out << source;
    out.close();
    if (!out) {
      err = "cannot write generated source to '" + cpp.string() + "'";
      fs::remove(tmp, ec);
      return false;
    }
    fs::rename(tmp, cpp, ec);
  }

  if (!compile_artifact(cxx, cpp, so, opt, err)) return false;
  return dlopen_artifact(so, img, err);
}

void unload_native_image(LoadedImage& img) {
  if (img.dl != nullptr) ::dlclose(img.dl);
  img = LoadedImage{};
}

}  // namespace liberty::gen
