// Delay: fixed-latency pipeline element (models wire/stage latency).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"

namespace liberty::pcl {

/// Values emerge `latency` cycles after acceptance, in order.
///
/// Parameters:
///   latency   cycles from acceptance to earliest delivery (>= 1)   [1]
///   capacity  in-flight entries (0 = latency, i.e. fully pipelined) [0]
///
/// With capacity == latency the element behaves like a rigid pipeline: it
/// accepts one value per cycle as long as the far end drains.
class Delay : public liberty::core::Module {
 public:
  Delay(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void declare_opt(liberty::core::OptTraits& traits) const override;
  [[nodiscard]] bool can_sleep() const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  [[nodiscard]] std::size_t in_flight() const noexcept {
    return items_.size();
  }
  [[nodiscard]] std::uint64_t latency() const noexcept { return latency_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    liberty::Value value;
    liberty::core::Cycle ready;
  };

  liberty::core::Port& in_;
  liberty::core::Port& out_;
  std::uint64_t latency_;
  std::size_t capacity_;
  std::deque<Entry> items_;
};

}  // namespace liberty::pcl
