// Rack-scale macro-benchmark (docs/scenarios.md).
//
// The flagship scenario — trace-driven nodes with programmable NICs over a
// wormhole mesh, multicore coherent compute planes per node — run under
// every scheduler at -O0 and -O2.  Unlike the micro-benchmarks, the
// figures of merit here are *model-level*: end-to-end request latency
// percentiles (p50/p95/p99) and throughput, alongside the usual
// wall-clock and kernel counters.  Every (scheduler, opt) cell must land
// on the same transfer and state digests — the rows double as a
// differential check at macro scale.
//
// Artifact: BENCH_rack.json in the working directory; the rack rows are
// also folded into the checked-in BENCH_scheduler.json so the scheduler
// comparison covers a full-system netlist.
#include "bench_util.hpp"

#include <algorithm>
#include <cmath>

#include "liberty/core/simulator.hpp"
#include "liberty/gen/compiled_scheduler.hpp"
#include "liberty/gen/native.hpp"
#include "liberty/opt/optimizer.hpp"
#include "liberty/resil/watchdog.hpp"
#include "liberty/scenario/rack.hpp"
#include "liberty/scenario/trace_modules.hpp"

using namespace liberty;
using namespace liberty::bench;

namespace {

core::ModuleRegistry& rack_registry() {
  static core::ModuleRegistry r = [] {
    core::ModuleRegistry reg;
    scenario::register_rack_libraries(reg);
    return reg;
  }();
  return r;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t idx =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(std::max(rank - 1.0, 0.0)));
  return sorted[idx];
}

struct CellResult {
  double wall_s = 0.0;
  std::uint64_t cycles = 0;
  std::uint64_t injected = 0;
  std::uint64_t completed = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double throughput_rpkc = 0.0;
  double router_total_pj = 0.0;
  double peak_temperature_c = 0.0;
  std::uint64_t trace_digest = 0;
  std::uint64_t state_digest = 0;
  std::vector<std::pair<std::string, std::uint64_t>> kernel;
};

CellResult run_cell(const scenario::RackConfig& cfg,
                    const testing::NetSpec& spec, core::SchedulerKind kind,
                    unsigned threads, int opt_level) {
  core::Netlist nl;
  spec.build(nl, rack_registry());
  opt::optimize(nl, opt::OptOptions::for_level(opt_level));
  core::Simulator sim(nl, kind, threads);
  resil::TraceRecorder recorder(nl);
  sim.set_probe(&recorder);
  CellResult res;
  res.wall_s = time_seconds([&] { res.cycles = sim.run(cfg.cycles); });
  res.trace_digest = resil::fold_trace(recorder.hashes());
  res.state_digest = sim.snapshot().digest();
  std::vector<double> lats;
  for (std::size_t n = 0; n < cfg.nodes(); ++n) {
    const std::string base = "n" + std::to_string(n);
    if (const auto* src = dynamic_cast<const scenario::TraceSource*>(
            nl.find(base + ".src"))) {
      res.injected += src->injected();
    }
    if (const auto* sink = dynamic_cast<const scenario::TraceSink*>(
            nl.find(base + ".sink"))) {
      for (const auto& rec : sink->records()) {
        lats.push_back(rec.done >= rec.born
                           ? static_cast<double>(rec.done - rec.born)
                           : 0.0);
      }
    }
  }
  std::sort(lats.begin(), lats.end());
  res.completed = lats.size();
  res.p50 = percentile(lats, 0.50);
  res.p95 = percentile(lats, 0.95);
  res.p99 = percentile(lats, 0.99);
  res.throughput_rpkc =
      res.cycles == 0 ? 0.0
                      : static_cast<double>(res.completed) * 1000.0 /
                            static_cast<double>(res.cycles);
  const scenario::RackPowerReport power = scenario::rack_power_report(nl, cfg);
  res.router_total_pj = power.router_total_pj;
  res.peak_temperature_c = power.peak_temperature_c;
  res.kernel = kernel_counters(sim.scheduler());
  return res;
}

}  // namespace

int main() {
  gen::ensure_registered();
  scenario::RackConfig cfg;  // the default 2x2 rack, 2 cores + OoO per node
  const testing::NetSpec spec = scenario::rack_netspec(cfg);

  struct Cell {
    const char* label;
    core::SchedulerKind kind;
    unsigned threads;
  };
  std::vector<Cell> matrix = {
      {"dynamic", core::SchedulerKind::Dynamic, 0},
      {"static", core::SchedulerKind::Static, 0},
      {"parallel", core::SchedulerKind::Parallel, 0},
      {"compiled", core::SchedulerKind::Compiled, 0},
  };
  if (gen::native_available()) {
    // Digest identity at macro scale is the point of this row: whatever
    // the emitter declines inside the rack runs on the bytecode fallback
    // of the same scheduler, and the trace/state digests must still match
    // every other cell bit for bit.
    matrix.push_back({"native", core::SchedulerKind::Native, 0});
  } else {
    std::printf("(native codegen not built: configure with "
                "-DLIBERTY_NATIVE_CODEGEN=ON for a native row)\n");
  }

  FILE* out = std::fopen("BENCH_rack.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_rack.json\n");
    return 1;
  }
  JsonWriter json(out);
  json.begin_object();
  json.field("bench", "rack");
  json.field("netlist", cfg.tag());
  json.field("cycles", static_cast<std::uint64_t>(cfg.cycles));
  json.begin_array("schedulers");

  Table table({"scheduler", "wall_s", "p50", "p95", "p99", "rpkc", "done"});
  bool identical = true;
  std::uint64_t ref_trace = 0, ref_state = 0;
  bool have_ref = false;
  for (const Cell& cell : matrix) {
    for (const int opt_level : {0, 2}) {
      const CellResult res =
          run_cell(cfg, spec, cell.kind, cell.threads, opt_level);
      if (!have_ref) {
        ref_trace = res.trace_digest;
        ref_state = res.state_digest;
        have_ref = true;
      } else if (res.trace_digest != ref_trace ||
                 res.state_digest != ref_state) {
        identical = false;
      }
      const std::string label =
          std::string(cell.label) + "-O" + std::to_string(opt_level);
      table.row({label, fmt(res.wall_s, 3), fmt(res.p50, 0), fmt(res.p95, 0),
                 fmt(res.p99, 0), fmt(res.throughput_rpkc, 3),
                 fmt(res.completed)});
      json.object();
      json.field("name", label);
      json.field("scheduler", cell.label);
      json.field("opt_level", static_cast<std::uint64_t>(opt_level));
      json.field("wall_s", res.wall_s);
      json.field("kcycles_per_s",
                 res.wall_s > 0.0
                     ? static_cast<double>(res.cycles) / 1000.0 / res.wall_s
                     : 0.0);
      json.field("requests_injected", res.injected);
      json.field("requests_completed", res.completed);
      json.field("latency_p50", res.p50);
      json.field("latency_p95", res.p95);
      json.field("latency_p99", res.p99);
      json.field("throughput_rpkc", res.throughput_rpkc);
      json.field("router_total_pj", res.router_total_pj);
      json.field("peak_temperature_c", res.peak_temperature_c);
      char digest[32];
      std::snprintf(digest, sizeof digest, "%016llx",
                    static_cast<unsigned long long>(res.trace_digest));
      json.field("trace_digest", digest);
      std::snprintf(digest, sizeof digest, "%016llx",
                    static_cast<unsigned long long>(res.state_digest));
      json.field("state_digest", digest);
      emit_kernel_counters(json, res.kernel);
      json.end_object();
    }
  }
  json.end_array();
  json.field("digests_identical", identical ? "true" : "false");
  json.end_object();
  std::fclose(out);

  table.print();
  std::printf("digests identical across all cells: %s\n",
              identical ? "yes" : "NO");
  std::printf("wrote BENCH_rack.json\n");
  return identical ? 0 : 1;
}
