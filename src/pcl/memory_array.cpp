#include "liberty/pcl/memory_array.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"

namespace liberty::pcl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;

MemoryArray::MemoryArray(const std::string& name, const Params& params)
    : Module(name),
      req_(add_in("req", AckMode::Managed, 0)),
      resp_(add_out("resp", 0)),
      latency_(static_cast<std::uint64_t>(params.get_int("latency", 1))),
      mshrs_(static_cast<std::size_t>(params.get_int("mshrs", 4))),
      ports_(static_cast<std::size_t>(params.get_int("ports", 1))) {
  if (latency_ == 0) {
    throw liberty::ElaborationError("pcl.memory_array '" + name +
                                    "': latency must be >= 1");
  }
}

void MemoryArray::cycle_start(Cycle c) {
  const bool head_ready = !pending_.empty() && pending_.front().ready <= c;
  for (std::size_t i = 0; i < resp_.width(); ++i) {
    if (head_ready && i == pending_.front().src_ep) {
      resp_.send_at(i, pending_.front().resp);
    } else {
      resp_.idle(i);
    }
  }

  std::size_t budget =
      pending_.size() < mshrs_ ? std::min(ports_, mshrs_ - pending_.size())
                               : 0;
  for (std::size_t i = 0; i < req_.width(); ++i) {
    if (budget > 0) {
      req_.ack(i);
      --budget;
    } else {
      req_.nack(i);
      stats().bind(busy_stalls_stat_, "busy_stalls");
      busy_stalls_stat_->inc();
    }
  }
}

void MemoryArray::end_of_cycle() {
  if (!pending_.empty() && pending_.front().src_ep < resp_.width() &&
      resp_.transferred(pending_.front().src_ep)) {
    pending_.pop_front();
  }
  for (std::size_t i = 0; i < req_.width(); ++i) {
    if (!req_.transferred(i)) continue;
    const auto r = req_.data(i).as<MemReq>();
    std::int64_t out_data = 0;
    if (r->op == MemReq::Op::Read) {
      out_data = peek(r->addr);
      stats().bind(reads_stat_, "reads");
      reads_stat_->inc();
    } else {
      store_[r->addr] = r->data;
      stats().bind(writes_stat_, "writes");
      writes_stat_->inc();
    }
    pending_.push_back(Pending{
        liberty::Value::make<MemResp>(r->tag, out_data,
                                      r->op == MemReq::Op::Write),
        now() + latency_, i});
  }
}

void MemoryArray::save_state(liberty::core::StateWriter& w) const {
  // The backing store is an unordered_map; serialize sorted by address so
  // equal stores digest identically regardless of insertion history.
  std::vector<std::pair<std::uint64_t, std::int64_t>> cells(store_.begin(),
                                                            store_.end());
  std::sort(cells.begin(), cells.end());
  w.put_size(cells.size());
  for (const auto& [addr, data] : cells) {
    w.put_u64(addr);
    w.put_i64(data);
  }
  w.put_size(pending_.size());
  for (const auto& p : pending_) {
    w.put(p.resp);
    w.put_u64(p.ready);
    w.put_size(p.src_ep);
  }
}

void MemoryArray::load_state(liberty::core::StateReader& r) {
  store_.clear();
  const std::size_t cells = r.get_size();
  for (std::size_t i = 0; i < cells; ++i) {
    const std::uint64_t addr = r.get_u64();
    store_[addr] = r.get_i64();
  }
  pending_.clear();
  const std::size_t n = r.get_size();
  for (std::size_t i = 0; i < n; ++i) {
    liberty::Value resp = r.get();
    const Cycle ready = r.get_u64();
    const std::size_t src_ep = r.get_size();
    pending_.push_back(Pending{std::move(resp), ready, src_ep});
  }
}

void MemoryArray::declare_deps(Deps& deps) const {
  deps.state_only(resp_);
  deps.state_only(req_);
}

}  // namespace liberty::pcl
