// Parameters: the customization interface of module templates.
//
// "Components have algorithmic parameters, parameters whose values describe
// functionality.  Via these parameters, users can inherit the overall
// functionality of a module template, but adapt the specific behavior to the
// system being modeled." (§2.1)
//
// Params is a name -> Value map with typed accessors.  Accesses are
// recorded so that elaboration can reject misspelled parameter names —
// silently ignored parameters are exactly the kind of unnoticed modeling
// error the paper's methodology is designed to eliminate.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "liberty/support/error.hpp"
#include "liberty/support/value.hpp"

namespace liberty::core {

class Params {
 public:
  Params() = default;

  Params& set(const std::string& name, Value v) {
    values_[name] = std::move(v);
    return *this;
  }

  [[nodiscard]] bool has(const std::string& name) const {
    touched_.insert(name);
    return values_.count(name) != 0;
  }

  /// Typed getters with a default for absent parameters.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t dflt) const {
    touched_.insert(name);
    const auto it = values_.find(name);
    return it == values_.end() ? dflt : it->second.as_int();
  }
  [[nodiscard]] double get_real(const std::string& name, double dflt) const {
    touched_.insert(name);
    const auto it = values_.find(name);
    return it == values_.end() ? dflt : it->second.as_real();
  }
  [[nodiscard]] bool get_bool(const std::string& name, bool dflt) const {
    touched_.insert(name);
    const auto it = values_.find(name);
    return it == values_.end() ? dflt : it->second.as_bool();
  }
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& dflt) const {
    touched_.insert(name);
    const auto it = values_.find(name);
    return it == values_.end() ? dflt : it->second.as_string();
  }

  /// Required variants (no default): throw ElaborationError when missing.
  [[nodiscard]] std::int64_t require_int(const std::string& name) const {
    touched_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end()) {
      throw liberty::ElaborationError("missing required parameter '" + name +
                                      "'");
    }
    return it->second.as_int();
  }
  [[nodiscard]] std::string require_string(const std::string& name) const {
    touched_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end()) {
      throw liberty::ElaborationError("missing required parameter '" + name +
                                      "'");
    }
    return it->second.as_string();
  }
  [[nodiscard]] const Value& require(const std::string& name) const {
    touched_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end()) {
      throw liberty::ElaborationError("missing required parameter '" + name +
                                      "'");
    }
    return it->second;
  }

  /// Parameters that were set but never read by the module's constructor —
  /// almost always a typo in the specification.
  [[nodiscard]] std::vector<std::string> unused() const {
    std::vector<std::string> out;
    for (const auto& [name, v] : values_) {
      (void)v;
      if (touched_.count(name) == 0) out.push_back(name);
    }
    return out;
  }

  [[nodiscard]] const std::map<std::string, Value>& values() const noexcept {
    return values_;
  }

 private:
  std::map<std::string, Value> values_;
  mutable std::set<std::string> touched_;
};

}  // namespace liberty::core
