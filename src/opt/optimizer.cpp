#include "liberty/opt/optimizer.hpp"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "liberty/core/connection.hpp"
#include "liberty/core/module.hpp"
#include "liberty/core/opt.hpp"
#include "liberty/core/port.hpp"
#include "liberty/support/error.hpp"

namespace liberty::opt {

using core::AckMode;
using core::backward_channel;
using core::ChannelKind;
using core::Connection;
using core::forward_channel;
using core::Module;
using core::Netlist;
using core::OptPlan;
using core::OptTraits;
using core::Port;
using core::PortDir;

namespace {

/// What constant propagation has concluded about one channel so far.
struct ChannelFact {
  bool known = false;
  bool asserted = false;   // enable (forward) / ack (backward)
  liberty::Value value;    // forward payload when asserted
};

/// One declared pass-through, located in the netlist.  A null connection
/// means the corresponding port endpoint is unconnected; `valid` is false
/// when the declaration cannot be located on a unique endpoint pair (a
/// port with several connected endpoints is not a single channel).
struct PassThroughSite {
  Module* module = nullptr;
  const OptTraits::PassThrough* decl = nullptr;
  Connection* in_conn = nullptr;
  Connection* out_conn = nullptr;
  bool valid = false;
};

/// The unique connected endpoint of `p`, or null; `ok` is false when more
/// than one endpoint is connected.
Connection* unique_endpoint(const Port& p, bool& ok) {
  Connection* found = nullptr;
  ok = true;
  for (std::size_t i = 0; i < p.width(); ++i) {
    Connection* c = p.connection(i);
    if (c == nullptr) continue;
    if (found != nullptr) {
      ok = false;
      return nullptr;
    }
    found = c;
  }
  return found;
}

}  // namespace

std::string OptReport::summary() const {
  std::ostringstream os;
  os << "opt: -O" << level;
  if (level == 0) {
    os << " (no plan attached)";
    return os.str();
  }
  os << "  const=" << const_forwards << "fwd+" << const_backwards << "bwd"
     << "  elided=" << elided_modules << "  chains=" << fused_chains << "("
     << fused_modules << " modules)"
     << "  sleepable=" << sleepable_modules
     << (gating ? "  gating=on" : "  gating=off");
  return os.str();
}

OptReport optimize(Netlist& netlist, const OptOptions& options) {
  if (!netlist.finalized()) {
    throw liberty::ElaborationError(
        "opt::optimize: netlist must be finalized first");
  }
  OptReport report;
  report.level = options.level;
  // Make re-optimization (e.g. tests sweeping levels) start from scratch.
  netlist.set_opt_plan(nullptr);
  if (!options.constprop && !options.dce && !options.fuse && !options.gate) {
    return report;  // -O0: no plan at all; schedulers take the null path.
  }

  const auto& modules = netlist.modules();
  const std::size_t n_mod = modules.size();
  const std::size_t n_conn = netlist.connection_count();
  const std::size_t n_ch = 2 * n_conn;
  std::ostringstream detail;

  // ---- Gather declarations -----------------------------------------------
  std::vector<OptTraits> traits(n_mod);
  for (std::size_t i = 0; i < n_mod; ++i) {
    modules[i]->declare_opt(traits[i]);
  }
  std::vector<PassThroughSite> sites;
  // Per-module site index when the module declares exactly one pass-through
  // (the shape chain fusion needs); -1 otherwise.
  std::vector<std::int32_t> site_of(n_mod, -1);
  for (std::size_t i = 0; i < n_mod; ++i) {
    for (const OptTraits::PassThrough& pt : traits[i].passthroughs()) {
      PassThroughSite s;
      s.module = modules[i].get();
      s.decl = &pt;
      bool in_ok = true;
      bool out_ok = true;
      s.in_conn = unique_endpoint(*pt.in, in_ok);
      s.out_conn = unique_endpoint(*pt.out, out_ok);
      s.valid = in_ok && out_ok && pt.in->dir() == PortDir::In &&
                pt.out->dir() == PortDir::Out;
      sites.push_back(std::move(s));
    }
    if (traits[i].passthroughs().size() == 1 && sites.back().valid) {
      site_of[i] = static_cast<std::int32_t>(sites.size() - 1);
    }
  }

  // ---- Pass 1: constant propagation --------------------------------------
  std::vector<ChannelFact> fact(n_ch);
  auto set_fwd = [&fact](const Connection& c, bool enabled,
                         const liberty::Value& v) {
    ChannelFact& f = fact[forward_channel(c.id())];
    if (f.known) return false;
    f.known = true;
    f.asserted = enabled;
    if (enabled) f.value = v;
    return true;
  };
  auto set_bwd = [&fact](const Connection& c, bool acked) {
    ChannelFact& f = fact[backward_channel(c.id())];
    if (f.known) return false;
    f.known = true;
    f.asserted = acked;
    return true;
  };

  if (options.constprop) {
    // Seeds: declared constant forwards, on every connected endpoint of the
    // declaring port.
    for (std::size_t i = 0; i < n_mod; ++i) {
      for (const OptTraits::ConstForward& cf : traits[i].const_forwards()) {
        if (cf.port->dir() != PortDir::Out) continue;
        for (std::size_t e = 0; e < cf.port->width(); ++e) {
          if (Connection* c = cf.port->connection(e)) {
            set_fwd(*c, cf.enabled, cf.value);
          }
        }
      }
    }
    // Seeds: a pass-through whose output is unconnected always sees the
    // port's configured unconnected ack, so its input ack is that constant
    // (pass-through contract: in is acked exactly when out is acked).
    for (const PassThroughSite& s : sites) {
      if (!s.valid || s.in_conn == nullptr || s.out_conn != nullptr) continue;
      if (s.in_conn->ack_mode() != AckMode::Managed ||
          s.in_conn->has_transfer_gate()) {
        continue;
      }
      set_bwd(*s.in_conn, s.decl->out->unconnected_ack());
    }
    // Rules, to a fixed point.  Channels are single-assignment here, so the
    // loop terminates after at most n_ch productive iterations.
    bool changed = true;
    while (changed) {
      changed = false;
      // R1: on a gate-free AutoAccept connection the kernel resolves
      // ack := enable, so a constant offer makes the ack constant.
      for (const auto& cp : netlist.connections()) {
        const Connection& c = *cp;
        if (c.ack_mode() != AckMode::AutoAccept || c.has_transfer_gate()) {
          continue;
        }
        const ChannelFact& f = fact[forward_channel(c.id())];
        if (f.known && !fact[backward_channel(c.id())].known) {
          changed |= set_bwd(c, f.asserted);
        }
      }
      for (const PassThroughSite& s : sites) {
        if (!s.valid || s.in_conn == nullptr || s.out_conn == nullptr) {
          continue;
        }
        // R2-fwd: constant offer in, constant offer out.  Idle passes
        // through any transform; an asserted value is folded through the
        // (pure) transform once, here at elaboration time.
        const ChannelFact& fi = fact[forward_channel(s.in_conn->id())];
        ChannelFact& fo = fact[forward_channel(s.out_conn->id())];
        if (fi.known && !fo.known) {
          if (!fi.asserted) {
            changed |= set_fwd(*s.out_conn, false, liberty::Value());
          } else if (!s.decl->transform) {
            changed |= set_fwd(*s.out_conn, true, fi.value);
          } else {
            changed |= set_fwd(*s.out_conn, true, s.decl->transform(fi.value));
          }
        }
        // R2-bwd: constant ack out, constant ack in (the module mirrors the
        // downstream ack onto its managed input).
        if (s.in_conn->ack_mode() == AckMode::Managed &&
            !s.in_conn->has_transfer_gate()) {
          const ChannelFact& fa = fact[backward_channel(s.out_conn->id())];
          if (fa.known && !fact[backward_channel(s.in_conn->id())].known) {
            changed |= set_bwd(*s.in_conn, fa.asserted);
          }
        }
      }
    }
  }

  // ---- Pass 2: dead-logic elision ----------------------------------------
  std::vector<char> elided(n_mod, 0);
  if (options.dce) {
    for (std::size_t i = 0; i < n_mod; ++i) {
      if (!traits[i].is_stateless() || !traits[i].is_pure()) continue;
      // Every channel the module drives must already be constant: output
      // forwards, and the acks of managed inputs.  (A stateless, pure
      // declaration promises the module never drives an AutoAccept ack.)
      bool all_const = true;
      for (const auto& port : modules[i]->ports()) {
        for (std::size_t e = 0; e < port->width() && all_const; ++e) {
          const Connection* c = port->connection(e);
          if (c == nullptr) continue;
          if (port->dir() == PortDir::Out) {
            all_const = fact[forward_channel(c->id())].known;
          } else if (c->ack_mode() == AckMode::Managed) {
            all_const = fact[backward_channel(c->id())].known;
          }
        }
        if (!all_const) break;
      }
      if (all_const) {
        elided[i] = 1;
        detail << "elide: " << modules[i]->name() << '\n';
      }
    }
  }

  // ---- Pass 3: stateless-chain fusion ------------------------------------
  // A module is fusable when its single declared pass-through covers every
  // connected endpoint it has, both links are plain managed/gate-free point
  // -to-point connections, and it survived DCE.
  std::vector<char> fusable(n_mod, 0);
  if (options.fuse) {
    for (std::size_t i = 0; i < n_mod; ++i) {
      if (elided[i] != 0 || site_of[i] < 0) continue;
      const PassThroughSite& s = sites[static_cast<std::size_t>(site_of[i])];
      if (s.in_conn == nullptr || s.out_conn == nullptr) continue;
      if (s.in_conn->ack_mode() != AckMode::Managed) continue;
      if (s.in_conn->has_transfer_gate() || s.out_conn->has_transfer_gate()) {
        continue;
      }
      bool only_pt = true;
      for (const auto& port : modules[i]->ports()) {
        for (std::size_t e = 0; e < port->width(); ++e) {
          const Connection* c = port->connection(e);
          if (c != nullptr && c != s.in_conn && c != s.out_conn) {
            only_pt = false;
          }
        }
      }
      if (only_pt) fusable[i] = 1;
    }
  }
  std::vector<OptPlan::Chain> chains;
  std::vector<std::int32_t> chain_of_module(n_mod, -1);
  std::vector<std::int32_t> chain_of_channel(n_ch, -1);
  if (options.fuse) {
    auto site = [&](const Module* m) -> const PassThroughSite& {
      return sites[static_cast<std::size_t>(site_of[m->id()])];
    };
    auto is_free = [&](const Module* m) {
      return fusable[m->id()] != 0 && chain_of_module[m->id()] < 0;
    };
    for (std::size_t i = 0; i < n_mod; ++i) {
      Module* m = modules[i].get();
      if (!is_free(m)) continue;
      // Walk upstream to the chain head ...
      Module* head = m;
      while (true) {
        Connection* ic = site(head).in_conn;
        Module* p = ic->producer();
        if (p == m || !is_free(p) || site(p).out_conn != ic) break;
        head = p;
      }
      // ... then collect downstream members.
      std::vector<Module*> members{head};
      while (true) {
        Connection* oc = site(members.back()).out_conn;
        Module* c = oc->consumer();
        if (c == head || !is_free(c) || site(c).in_conn != oc) break;
        members.push_back(c);
      }
      if (members.size() < 2) continue;
      // A pure ring of pass-throughs has no external producer to start a
      // sweep from; leave it to the normal resolution path.
      if (std::find(members.begin(), members.end(),
                    site(head).in_conn->producer()) != members.end()) {
        continue;
      }
      OptPlan::Chain ch;
      ch.links.push_back(site(head).in_conn);
      const auto idx = static_cast<std::int32_t>(chains.size());
      detail << "fuse: chain of " << members.size() << ":";
      for (Module* mem : members) {
        ch.members.push_back(mem);
        ch.links.push_back(site(mem).out_conn);
        ch.transforms.push_back(site(mem).decl->transform);
        chain_of_module[mem->id()] = idx;
        detail << ' ' << mem->name();
      }
      detail << '\n';
      // The forward sweep resolves the members' outputs (links 1..n); the
      // backward sweep resolves the members' input acks (links 0..n-1).
      for (std::size_t k = 1; k < ch.links.size(); ++k) {
        chain_of_channel[forward_channel(ch.links[k]->id())] = idx;
      }
      for (std::size_t k = 0; k + 1 < ch.links.size(); ++k) {
        chain_of_channel[backward_channel(ch.links[k]->id())] = idx;
      }
      chains.push_back(std::move(ch));
    }
  }

  // ---- Pass 4: quiescence gating -----------------------------------------
  std::vector<char> sleepable(n_mod, 0);
  bool gating = false;
  if (options.gate) {
    for (std::size_t i = 0; i < n_mod; ++i) {
      if (traits[i].is_sleepable() && elided[i] == 0) {
        sleepable[i] = 1;
        gating = true;
        ++report.sleepable_modules;
      }
    }
  }

  // ---- Assemble and attach the plan --------------------------------------
  auto plan = std::make_shared<OptPlan>();
  plan->channel_const.assign(n_ch, 0);
  for (const auto& cp : netlist.connections()) {
    const ChannelFact& f = fact[forward_channel(cp->id())];
    if (!f.known) continue;
    plan->consts.push_back(
        {cp.get(), ChannelKind::Forward, f.asserted, f.value});
    plan->channel_const[forward_channel(cp->id())] = 1;
    ++report.const_forwards;
    detail << "const fwd: " << cp->describe() << " = "
           << (f.asserted ? f.value.to_string() : "idle") << '\n';
  }
  for (const auto& cp : netlist.connections()) {
    const ChannelFact& f = fact[backward_channel(cp->id())];
    if (!f.known) continue;
    plan->consts.push_back(
        {cp.get(), ChannelKind::Backward, f.asserted, liberty::Value()});
    plan->channel_const[backward_channel(cp->id())] = 1;
    ++report.const_backwards;
    detail << "const bwd: " << cp->describe() << " = "
           << (f.asserted ? "ack" : "nack") << '\n';
  }
  plan->elided = std::move(elided);
  plan->sleepable = std::move(sleepable);
  plan->chains = std::move(chains);
  plan->chain_of_module = std::move(chain_of_module);
  plan->chain_of_channel = std::move(chain_of_channel);
  plan->gating = gating;

  for (const char e : plan->elided) report.elided_modules += (e != 0);
  report.fused_chains = plan->chains.size();
  for (const OptPlan::Chain& ch : plan->chains) {
    report.fused_modules += ch.members.size();
  }
  report.gating = gating;
  if (gating) {
    for (std::size_t i = 0; i < n_mod; ++i) {
      if (plan->sleepable[i] != 0) {
        detail << "gate: " << modules[i]->name() << " sleepable\n";
      }
    }
  }
  report.detail = detail.str();
  netlist.set_opt_plan(std::move(plan));
  return report;
}

void write_annotated_dot(const Netlist& netlist, std::ostream& os) {
  const OptPlan* plan = netlist.opt_plan();
  // Chain colors cycle through a small palette.
  static const char* kChainColor[] = {"royalblue", "darkgreen", "darkorange",
                                      "purple", "firebrick", "teal"};
  constexpr std::size_t kNumColors = sizeof(kChainColor) / sizeof(char*);
  os << "digraph netlist {\n  rankdir=LR;\n  node [shape=box];\n";
  for (const auto& m : netlist.modules()) {
    os << "  m" << m->id() << " [label=\"" << m->name();
    if (plan != nullptr && plan->module_sleepable(m->id())) {
      os << "\\n(sleepable)";
    }
    os << "\"";
    if (plan != nullptr) {
      if (plan->module_elided(m->id())) {
        os << ", style=dashed, color=gray, fontcolor=gray";
      } else {
        const std::int32_t chain =
            m->id() < plan->chain_of_module.size()
                ? plan->chain_of_module[m->id()]
                : -1;
        if (chain >= 0) {
          os << ", color=" << kChainColor[chain % kNumColors];
        }
      }
    }
    os << "];\n";
  }
  for (const auto& c : netlist.connections()) {
    os << "  m" << c->producer()->id() << " -> m" << c->consumer()->id()
       << " [label=\"" << c->producer_ref() << "\\n" << c->consumer_ref()
       << "\"";
    if (plan != nullptr) {
      const bool cf = plan->channel_const[forward_channel(c->id())] != 0;
      const bool cb = plan->channel_const[backward_channel(c->id())] != 0;
      if (cf && cb) {
        os << ", style=dotted";  // fully constant connection
      } else if (cf || cb) {
        os << ", style=dashed";  // one constant channel
      }
      const std::int32_t chain = plan->chain_of_channel[forward_channel(
          c->id())];
      if (chain >= 0) {
        os << ", color=" << kChainColor[chain % kNumColors];
      }
    }
    os << "];\n";
  }
  os << "}\n";
}

}  // namespace liberty::opt
