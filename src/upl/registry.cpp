#include "liberty/upl/upl.hpp"

namespace liberty::upl {

using liberty::core::ModuleRegistry;
using liberty::core::simple_factory;

void register_upl(ModuleRegistry& r) {
  r.register_template("upl.fetch", "pipeline fetch stage with prediction",
                      simple_factory<FetchStage>());
  r.register_template("upl.decode", "pipeline decode stage (scoreboard)",
                      simple_factory<DecodeStage>());
  r.register_template("upl.execute", "pipeline execute stage",
                      simple_factory<ExecuteStage>());
  r.register_template("upl.mem", "pipeline memory stage",
                      simple_factory<MemStage>());
  r.register_template("upl.writeback", "pipeline writeback stage",
                      simple_factory<WritebackStage>());
  r.register_template("upl.simple_cpu", "behavioral CPU with memory port",
                      simple_factory<SimpleCpu>());
  r.register_template("upl.ooo_core", "trace-driven out-of-order core",
                      simple_factory<OoOCore>());
  r.register_template("upl.cache", "set-associative cache",
                      simple_factory<CacheModule>());
  r.register_template("upl.memctl", "line-protocol memory controller",
                      simple_factory<MemoryCtl>());
}

}  // namespace liberty::upl
