// Native codegen, part 3: the scheduler (only compiled when
// LIBERTY_NATIVE_CODEGEN is ON).
//
// NativeScheduler layers a dlopened image over the bytecode backend: the
// image owns every module and channel the eligibility analysis accepted,
// the inherited tapes execute the residue, and the two halves meet only
// through the kernel's per-cycle bookkeeping.  Channel states stay inside
// the image on the fast path; they are mirrored onto the real Connection
// objects exactly when someone can observe them (checked kernel, probe,
// transfer observers) or when the residue still runs reactive SCCs whose
// cleanup sweep must see every channel resolved.
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "liberty/core/simulator.hpp"
#include "liberty/gen/native.hpp"
#include "native_impl.hpp"

namespace liberty::gen {

namespace core = liberty::core;

struct NativeScheduler::Impl {
  NativePlan plan;
  std::string source;
  LoadedImage img;
  void* image = nullptr;  // ln_create handle
  LnHost host{};
  bool active = false;
  std::uint64_t retirements = 0;

  // State-streaming bridge: exactly one of these is non-null while an
  // ln_export / ln_import call is on the stack.
  core::StateWriter* writer = nullptr;
  core::StateReader* reader = nullptr;

  // --- LnHost callbacks ---------------------------------------------------
  static Impl& self(void* ctx) { return *static_cast<Impl*>(ctx); }
  static core::Module& mod(void* ctx, unsigned slot) {
    return *self(ctx).plan.slots[slot].module;
  }
  static void cb_stop(void* ctx, unsigned slot) {
    mod(ctx, slot).request_stop();
  }
  static void cb_put_u64(void* ctx, unsigned long long v) {
    self(ctx).writer->put_u64(v);
  }
  static void cb_put_i64(void* ctx, long long v) {
    self(ctx).writer->put_i64(v);
  }
  static void cb_put_tok(void* ctx) {
    self(ctx).writer->put(liberty::Value());
  }
  static unsigned long long cb_get_u64(void* ctx) {
    return self(ctx).reader->get_u64();
  }
  static long long cb_get_i64(void* ctx) {
    return self(ctx).reader->get_i64();
  }
  static void cb_get_tok(void* ctx) { (void)self(ctx).reader->get(); }
  static void cb_stat_counter(void* ctx, unsigned slot, const char* name,
                              unsigned long long delta) {
    mod(ctx, slot).stats().counter(name).inc(delta);
  }
  static void cb_stat_acc(void* ctx, unsigned slot, const char* name,
                          unsigned long long count, double sum, double mn,
                          double mx) {
    mod(ctx, slot).stats().accumulator(name).merge(count, sum, mn, mx);
  }
};

NativeScheduler::NativeScheduler(core::Netlist& netlist)
    : CompiledScheduler(netlist), impl_(std::make_unique<Impl>()) {
  // The base constructor already lowered the full netlist to bytecode, so
  // every exit below leaves a correct (if native-less) scheduler behind.
  impl_->plan = analyze_native(netlist, graph_, plan_);
  if (impl_->plan.empty()) return;

  impl_->source = emit_native_source(impl_->plan);
  if (const std::string& dump = native_options().dump_source_path;
      !dump.empty()) {
    std::ofstream(dump) << impl_->source;
  }

  std::string err;
  if (!load_native_image(impl_->source, impl_->img, err)) {
    std::fprintf(stderr,
                 "liberty: native codegen unavailable (%s); "
                 "falling back to compiled bytecode\n",
                 err.c_str());
    return;
  }

  impl_->host = LnHost{impl_.get(),          &Impl::cb_stop,
                       &Impl::cb_put_u64,    &Impl::cb_put_i64,
                       &Impl::cb_put_tok,    &Impl::cb_get_u64,
                       &Impl::cb_get_i64,    &Impl::cb_get_tok,
                       &Impl::cb_stat_counter, &Impl::cb_stat_acc};
  impl_->image = impl_->img.create(&impl_->host);
  impl_->active = true;

  // Seed the image from the modules' current state (they are the authority
  // until the first native cycle runs).
  reimport_module_state();

  // Re-lower with the image-owned modules and SCCs masked out of the
  // tapes, and re-evaluate the hook decision for the residue.
  native_module_ = impl_->plan.module_mask;
  native_scc_ = impl_->plan.scc_mask;
  lower();
  install_hooks(fast_resolve_ ? nullptr : this);
}

NativeScheduler::~NativeScheduler() {
  if (impl_->image != nullptr) impl_->img.destroy(impl_->image);
  unload_native_image(impl_->img);
}

bool NativeScheduler::native_active() const noexcept {
  return impl_->active;
}

std::size_t NativeScheduler::native_module_count() const noexcept {
  return impl_->active ? impl_->plan.slots.size() : 0;
}

std::size_t NativeScheduler::native_channel_count() const noexcept {
  return impl_->active ? impl_->plan.channels.size() : 0;
}

const std::string& NativeScheduler::native_source() const noexcept {
  return impl_->source;
}

void NativeScheduler::visit_counters(const CounterVisitor& visit) const {
  CompiledScheduler::visit_counters(visit);
  visit("gen.native_active", impl_->active ? 1 : 0);
  visit("gen.native_modules", native_module_count());
  visit("gen.native_channels", native_channel_count());
  visit("gen.native_retirements", impl_->retirements);
}

void NativeScheduler::sync_module_state() {
  if (!impl_->active) return;
  for (std::size_t s = 0; s < impl_->plan.slots.size(); ++s) {
    core::Module& m = *impl_->plan.slots[s].module;
    core::StateWriter w;
    impl_->writer = &w;
    impl_->img.export_state(impl_->image, static_cast<unsigned>(s));
    impl_->writer = nullptr;
    core::StateReader r(w.slots(), m.name());
    m.load_state(r);
  }
  impl_->img.flush_stats(impl_->image);
}

void NativeScheduler::reimport_module_state() {
  if (!impl_->active) return;
  for (std::size_t s = 0; s < impl_->plan.slots.size(); ++s) {
    core::Module& m = *impl_->plan.slots[s].module;
    core::StateWriter w;
    m.save_state(w);
    core::StateReader r(w.slots(), m.name());
    impl_->reader = &r;
    impl_->img.import_state(impl_->image, static_cast<unsigned>(s));
    impl_->reader = nullptr;
  }
}

void NativeScheduler::retire_to_bytecode() {
  // Hand state and stat authority back to the module objects, then fall
  // off the image for good: fault hooks may perturb any module or channel,
  // which voids every specialization the emitter baked in.
  sync_module_state();
  impl_->active = false;
  ++impl_->retirements;
  native_module_.clear();
  native_scc_.clear();
  lower();
  install_hooks(fast_resolve_ ? nullptr : this);
}

void NativeScheduler::start_phase() {
  if (impl_->active && fault_ != nullptr) retire_to_bytecode();
  CompiledScheduler::start_phase();
  if (impl_->active) impl_->img.start(impl_->image, cycle_);
}

void NativeScheduler::resolve_cycle() {
  if (!impl_->active) {
    CompiledScheduler::resolve_cycle();
    return;
  }
  impl_->img.resolve(impl_->image);

  // Mirror native channel states onto the real Connections whenever
  // anything outside the image can observe them.  The residue's non-fast
  // path also requires it: its cleanup sweep walks every connection and
  // must find these already resolved.
  const bool mirror = core::checked_kernel_enabled() || probe_ != nullptr ||
                      !observers_.empty() || !fast_resolve_;
  const LnChan* ch = impl_->img.chans(impl_->image);
  if (mirror) {
    for (std::size_t i = 0; i < impl_->plan.channels.size(); ++i) {
      core::Connection& c = *impl_->plan.channels[i];
      const LnChan& l = ch[i];
      if (!c.forward_known()) {
        if (l.en != 0) {
          c.send(impl_->plan.channel_token[i] != 0
                     ? liberty::Value()
                     : liberty::Value(static_cast<std::int64_t>(l.val)));
        } else {
          c.idle();
        }
      }
      if (!c.ack_known()) {
        if (l.ack != 0) {
          c.ack();
        } else {
          c.nack();
        }
      }
    }
  }
  CompiledScheduler::resolve_cycle();
  if (!mirror) {
    // The fast sweep above accounted 2 resolutions for every connection
    // but saw no state for the native ones; feed their completed
    // transfers into the dirty list by hand (quiescence-gate food).
    core::detail::ResolveCtx& ctx = core::detail::t_resolve_ctx;
    for (std::size_t i = 0; i < impl_->plan.channels.size(); ++i) {
      if (ch[i].en != 0 && ch[i].ack != 0) {
        ctx.transferred.push_back(impl_->plan.channels[i]);
      }
    }
  }
}

void NativeScheduler::update_phase(std::uint64_t eoc_token) {
  CompiledScheduler::update_phase(eoc_token);
  if (impl_->active) impl_->img.commit(impl_->image, cycle_);
}

void register_native_scheduler() {
  core::set_native_scheduler_factory(
      [](core::Netlist& netlist) -> std::unique_ptr<core::SchedulerBase> {
        return std::make_unique<NativeScheduler>(netlist);
      });
}

}  // namespace liberty::gen
