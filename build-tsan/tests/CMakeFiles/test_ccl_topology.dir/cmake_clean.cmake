file(REMOVE_RECURSE
  "CMakeFiles/test_ccl_topology.dir/test_ccl_topology.cpp.o"
  "CMakeFiles/test_ccl_topology.dir/test_ccl_topology.cpp.o.d"
  "test_ccl_topology"
  "test_ccl_topology.pdb"
  "test_ccl_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ccl_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
