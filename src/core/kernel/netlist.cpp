#include "liberty/core/netlist.hpp"

#include <unordered_map>
#include <unordered_set>

#include "liberty/core/state.hpp"
#include "liberty/support/error.hpp"

namespace liberty::core {

namespace {
std::string endpoint_ref(const Port& p, std::size_t i) {
  return p.owner()->name() + "." + p.name() + "[" + std::to_string(i) + "]";
}
}  // namespace

std::string Port::ref(std::size_t i) const { return endpoint_ref(*this, i); }

std::string Connection::describe() const {
  return producer_ref_ + " -> " + consumer_ref_;
}

Module& Netlist::add(std::unique_ptr<Module> m) {
  if (finalized_) {
    throw liberty::ElaborationError(
        "cannot add module after netlist is finalized");
  }
  if (find(m->name()) != nullptr) {
    throw liberty::ElaborationError("duplicate module instance name '" +
                                    m->name() + "'");
  }
  m->id_ = modules_.size();
  m->stop_flag_ = &stop_flag_;
  by_name_.emplace(m->name(), m.get());
  modules_.push_back(std::move(m));
  return *modules_.back();
}

Module* Netlist::find(const std::string& name) const noexcept {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

Module& Netlist::get(const std::string& name) const {
  Module* m = find(name);
  if (m == nullptr) {
    throw liberty::ElaborationError("no module instance named '" + name + "'");
  }
  return *m;
}

Connection& Netlist::connect(Port& from, Port& to) {
  return connect_at(from, from.next_free(), to, to.next_free());
}

Connection& Netlist::connect_at(Port& from, std::size_t from_idx, Port& to,
                                std::size_t to_idx) {
  if (finalized_) {
    throw liberty::ElaborationError(
        "cannot connect after netlist is finalized");
  }
  if (from.dir() != PortDir::Out) {
    throw liberty::ElaborationError("connection source " +
                                    endpoint_ref(from, from_idx) +
                                    " is not an output port");
  }
  if (to.dir() != PortDir::In) {
    throw liberty::ElaborationError("connection destination " +
                                    endpoint_ref(to, to_idx) +
                                    " is not an input port");
  }
  auto conn = std::make_unique<Connection>(
      conns_.size(), from.owner(), endpoint_ref(from, from_idx), to.owner(),
      endpoint_ref(to, to_idx));
  conn->set_ack_mode(to.default_ack_mode());
  Connection& ref = *conn;
  from.bind(from_idx, &ref);
  to.bind(to_idx, &ref);
  conns_.push_back(std::move(conn));
  return ref;
}

void Netlist::finalize() {
  if (finalized_) {
    throw liberty::ElaborationError("netlist already finalized");
  }
  // Arity checks: every port must satisfy its declared connection bounds,
  // counting only bound endpoints (gaps from connect_at count as unbound and
  // receive unconnected-default behaviour).
  for (const auto& m : modules_) {
    for (const auto& p : m->ports()) {
      std::size_t bound = 0;
      for (std::size_t i = 0; i < p->width(); ++i) {
        if (p->connected(i)) ++bound;
      }
      if (bound < p->min_connections()) {
        throw liberty::ElaborationError(
            "port " + m->name() + "." + p->name() + " requires at least " +
            std::to_string(p->min_connections()) + " connection(s), has " +
            std::to_string(bound));
      }
      if (bound > p->max_connections()) {
        throw liberty::ElaborationError(
            "port " + m->name() + "." + p->name() + " allows at most " +
            std::to_string(p->max_connections()) + " connection(s), has " +
            std::to_string(bound));
      }
    }
  }
  finalized_ = true;
  for (const auto& m : modules_) m->init();
}

void Netlist::quarantine(Module& m) {
  if (!finalized_) {
    throw liberty::ElaborationError(
        "quarantine requires a finalized netlist");
  }
  if (quarantined_.size() < modules_.size()) {
    quarantined_.resize(modules_.size(), 0);
  }
  quarantined_[m.id()] = 1;
  // With the module's own control logic out of the picture, its inputs run
  // under the paper's default control semantics: the kernel accepts every
  // offer.  (Output forwards need no mode change — undriven forwards
  // default to "offers nothing".)
  for (const auto& c : conns_) {
    if (c->consumer() == &m) c->set_ack_mode(AckMode::AutoAccept);
  }
}

std::size_t Netlist::quarantined_count() const noexcept {
  std::size_t n = 0;
  for (const char q : quarantined_) n += (q != 0) ? 1 : 0;
  return n;
}

std::uint64_t Netlist::topology_hash() const {
  // FNV-1a over the structural description (see header: stable across
  // compilers, so deliberately no typeid names).
  std::uint64_t h = kFnv1aInit;
  const auto mix_str = [&h](const std::string& s) {
    h = fnv1a_mix(h, s.size());
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
  };
  h = fnv1a_mix(h, modules_.size());
  for (const auto& m : modules_) {
    mix_str(m->name());
    h = fnv1a_mix(h, is_quarantined(m->id()) ? 1 : 0);
  }
  h = fnv1a_mix(h, conns_.size());
  for (const auto& c : conns_) {
    mix_str(c->producer() != nullptr ? c->producer()->name() : std::string());
    mix_str(c->producer_ref());
    mix_str(c->consumer() != nullptr ? c->consumer()->name() : std::string());
    mix_str(c->consumer_ref());
    h = fnv1a_mix(h, static_cast<std::uint64_t>(c->ack_mode()));
  }
  return h;
}

void Netlist::dump_stats(std::ostream& os) const {
  for (const auto& m : modules_) {
    m->stats().dump(os, m->name());
  }
}

void Netlist::write_dot(std::ostream& os) const {
  os << "digraph netlist {\n  rankdir=LR;\n  node [shape=box];\n";
  std::unordered_map<const Module*, std::string> ids;
  for (const auto& m : modules_) {
    std::string id = "m" + std::to_string(m->id());
    ids[m.get()] = id;
    os << "  " << id << " [label=\"" << m->name() << "\"];\n";
  }
  for (const auto& c : conns_) {
    os << "  " << ids[c->producer()] << " -> " << ids[c->consumer()]
       << " [label=\"" << c->producer_ref() << "\\n" << c->consumer_ref()
       << "\"];\n";
  }
  os << "}\n";
}

}  // namespace liberty::core
