#include "liberty/testing/netspec.hpp"

#include <vector>

#include "liberty/core/mmio.hpp"
#include "liberty/support/error.hpp"

namespace liberty::testing {

void NetSpec::build(liberty::core::Netlist& netlist,
                    const liberty::core::ModuleRegistry& registry) const {
  std::vector<liberty::core::Module*> instances;
  instances.reserve(modules.size());
  for (const ModuleDecl& decl : modules) {
    instances.push_back(
        &netlist.add(registry.instantiate(decl.type, decl.name, decl.params)));
  }
  for (const EdgeDecl& e : edges) {
    if (e.from >= instances.size() || e.to >= instances.size()) {
      throw liberty::ElaborationError(
          "netspec edge references module index out of range");
    }
    const bool pinned = e.from_ep != kAnyEndpoint || e.to_ep != kAnyEndpoint;
    if (pinned) {
      if (e.from_ep == kAnyEndpoint || e.to_ep == kAnyEndpoint) {
        throw liberty::ElaborationError(
            "netspec edge pins only one endpoint; pin both or neither");
      }
      netlist.connect_at(instances[e.from]->out(e.from_port), e.from_ep,
                         instances[e.to]->in(e.to_port), e.to_ep);
    } else {
      netlist.connect(instances[e.from]->out(e.from_port),
                      instances[e.to]->in(e.to_port));
    }
  }
  for (const MmioDecl& m : mmios) {
    if (m.host >= instances.size() || m.device >= instances.size()) {
      throw liberty::ElaborationError(
          "netspec mmio references module index out of range");
    }
    auto* host = dynamic_cast<liberty::core::MmioHost*>(instances[m.host]);
    if (host == nullptr) {
      throw liberty::ElaborationError("netspec mmio host '" +
                                      modules[m.host].name +
                                      "' does not implement MmioHost");
    }
    auto* device =
        dynamic_cast<liberty::core::MmioDevice*>(instances[m.device]);
    if (device == nullptr) {
      throw liberty::ElaborationError("netspec mmio device '" +
                                      modules[m.device].name +
                                      "' does not implement MmioDevice");
    }
    host->attach_mmio(m.base, m.size, *device);
  }
  netlist.finalize();
}

std::string NetSpec::render() const {
  std::string out = "cycles " + std::to_string(cycles) + "\n";
  for (const ModuleDecl& decl : modules) {
    out += "module " + decl.type + " " + decl.name;
    for (const auto& [k, v] : decl.params.values()) {
      out += " " + k + "=" + v.to_string();
    }
    out += "\n";
  }
  for (const EdgeDecl& e : edges) {
    out += "connect " + modules[e.from].name + "." + e.from_port;
    if (e.from_ep != kAnyEndpoint) out += "@" + std::to_string(e.from_ep);
    out += " -> " + modules[e.to].name + "." + e.to_port;
    if (e.to_ep != kAnyEndpoint) out += "@" + std::to_string(e.to_ep);
    out += "\n";
  }
  for (const MmioDecl& m : mmios) {
    out += "mmio " + modules[m.device].name + " -> " + modules[m.host].name +
           " base=" + std::to_string(m.base) +
           " size=" + std::to_string(m.size) + "\n";
  }
  return out;
}

}  // namespace liberty::testing
