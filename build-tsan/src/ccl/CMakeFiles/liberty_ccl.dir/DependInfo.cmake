
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccl/fabric.cpp" "src/ccl/CMakeFiles/liberty_ccl.dir/fabric.cpp.o" "gcc" "src/ccl/CMakeFiles/liberty_ccl.dir/fabric.cpp.o.d"
  "/root/repo/src/ccl/registry.cpp" "src/ccl/CMakeFiles/liberty_ccl.dir/registry.cpp.o" "gcc" "src/ccl/CMakeFiles/liberty_ccl.dir/registry.cpp.o.d"
  "/root/repo/src/ccl/router.cpp" "src/ccl/CMakeFiles/liberty_ccl.dir/router.cpp.o" "gcc" "src/ccl/CMakeFiles/liberty_ccl.dir/router.cpp.o.d"
  "/root/repo/src/ccl/topology.cpp" "src/ccl/CMakeFiles/liberty_ccl.dir/topology.cpp.o" "gcc" "src/ccl/CMakeFiles/liberty_ccl.dir/topology.cpp.o.d"
  "/root/repo/src/ccl/traffic.cpp" "src/ccl/CMakeFiles/liberty_ccl.dir/traffic.cpp.o" "gcc" "src/ccl/CMakeFiles/liberty_ccl.dir/traffic.cpp.o.d"
  "/root/repo/src/ccl/wireless.cpp" "src/ccl/CMakeFiles/liberty_ccl.dir/wireless.cpp.o" "gcc" "src/ccl/CMakeFiles/liberty_ccl.dir/wireless.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/liberty_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pcl/CMakeFiles/liberty_pcl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/liberty_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
