# Empty dependencies file for test_ccl_topology.
# This may be replaced when dependencies are built.
