file(REMOVE_RECURSE
  "CMakeFiles/liberty_support.dir/stats.cpp.o"
  "CMakeFiles/liberty_support.dir/stats.cpp.o.d"
  "CMakeFiles/liberty_support.dir/strings.cpp.o"
  "CMakeFiles/liberty_support.dir/strings.cpp.o.d"
  "CMakeFiles/liberty_support.dir/value.cpp.o"
  "CMakeFiles/liberty_support.dir/value.cpp.o.d"
  "libliberty_support.a"
  "libliberty_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
