#include "liberty/testing/netspec.hpp"

#include <vector>

#include "liberty/support/error.hpp"

namespace liberty::testing {

void NetSpec::build(liberty::core::Netlist& netlist,
                    const liberty::core::ModuleRegistry& registry) const {
  std::vector<liberty::core::Module*> instances;
  instances.reserve(modules.size());
  for (const ModuleDecl& decl : modules) {
    instances.push_back(
        &netlist.add(registry.instantiate(decl.type, decl.name, decl.params)));
  }
  for (const EdgeDecl& e : edges) {
    if (e.from >= instances.size() || e.to >= instances.size()) {
      throw liberty::ElaborationError(
          "netspec edge references module index out of range");
    }
    netlist.connect(instances[e.from]->out(e.from_port),
                    instances[e.to]->in(e.to_port));
  }
  netlist.finalize();
}

std::string NetSpec::render() const {
  std::string out = "cycles " + std::to_string(cycles) + "\n";
  for (const ModuleDecl& decl : modules) {
    out += "module " + decl.type + " " + decl.name;
    for (const auto& [k, v] : decl.params.values()) {
      out += " " + k + "=" + v.to_string();
    }
    out += "\n";
  }
  for (const EdgeDecl& e : edges) {
    out += "connect " + modules[e.from].name + "." + e.from_port + " -> " +
           modules[e.to].name + "." + e.to_port + "\n";
  }
  return out;
}

}  // namespace liberty::testing
