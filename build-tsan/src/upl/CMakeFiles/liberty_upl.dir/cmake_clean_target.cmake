file(REMOVE_RECURSE
  "libliberty_upl.a"
)
