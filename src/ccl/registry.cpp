#include <typeindex>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/checkpoint.hpp"

namespace liberty::ccl {

using liberty::core::ByteReader;
using liberty::core::ByteWriter;
using liberty::core::ModuleRegistry;
using liberty::core::simple_factory;

namespace {

void register_payload_codecs() {
  core::register_payload_codec(
      "ccl.flit", std::type_index(typeid(Flit)),
      [](const Payload& p, ByteWriter& w) {
        const auto& f = static_cast<const Flit&>(p);
        w.put_u64(f.packet);
        w.put_u64(f.src);
        w.put_u64(f.dst);
        w.put_u64(f.born);
        w.put_u64(f.vc);
        w.put_u8(f.head ? 1 : 0);
        w.put_u8(f.tail ? 1 : 0);
        w.put_u64(f.hops);
        core::encode_value(w, f.body);
      },
      [](ByteReader& r) {
        const std::uint64_t packet = r.get_u64();
        const auto src = static_cast<std::size_t>(r.get_u64());
        const auto dst = static_cast<std::size_t>(r.get_u64());
        const std::uint64_t born = r.get_u64();
        const auto vc = static_cast<std::size_t>(r.get_u64());
        const bool head = r.get_u8() != 0;
        const bool tail = r.get_u8() != 0;
        const std::uint64_t hops = r.get_u64();
        Value body = core::decode_value(r);
        // hops is post-construction state (Flit::hopped), not a ctor arg.
        auto f = std::make_shared<Flit>(packet, src, dst, born, vc, head,
                                        tail, std::move(body));
        f->hops = hops;
        return Value(std::shared_ptr<const Payload>(std::move(f)));
      });
}

}  // namespace

void register_ccl(ModuleRegistry& r) {
  register_payload_codecs();
  r.register_template("ccl.router", "VC wormhole router with Orion power",
                      simple_factory<Router>());
  r.register_template("ccl.link", "pipelined link with energy model",
                      simple_factory<Link>());
  r.register_template("ccl.bus", "arbitrated shared (snooping) bus",
                      simple_factory<Bus>());
  r.register_template("ccl.traffic_gen", "statistical packet generator",
                      simple_factory<TrafficGen>());
  r.register_template("ccl.traffic_sink", "flit sink with latency stats",
                      simple_factory<TrafficSink>());
  r.register_template("ccl.wireless", "CSMA wireless channel",
                      simple_factory<WirelessChannel>());
}

}  // namespace liberty::ccl
