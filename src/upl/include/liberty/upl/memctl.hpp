// MemoryCtl: line-protocol memory controller (backing store below caches).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"

namespace liberty::upl {

/// Accepts upl::LineReq on `req`; Fetch/FetchExclusive produce a
/// upl::LineResp on `resp` after `latency` cycles; Writeback updates the
/// store silently.
///
/// Parameters:
///   latency      access latency (>= 1)                        [20]
///   line_words   words per line (must match the caches)       [4]
///   bandwidth    requests accepted per cycle                  [1]
///
/// Stats: fetches, writebacks.
class MemoryCtl : public liberty::core::Module {
 public:
  MemoryCtl(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  void poke(std::uint64_t addr, std::int64_t v) { store_[addr] = v; }
  [[nodiscard]] std::int64_t peek(std::uint64_t addr) const {
    const auto it = store_.find(addr);
    return it == store_.end() ? 0 : it->second;
  }

 private:
  struct Pending {
    liberty::Value resp;
    liberty::core::Cycle ready;
  };

  liberty::core::Port& req_;
  liberty::core::Port& resp_;
  std::uint64_t latency_;
  std::size_t line_words_;
  std::size_t bandwidth_;
  std::unordered_map<std::uint64_t, std::int64_t> store_;
  std::deque<Pending> pending_;
};

}  // namespace liberty::upl
