#include "liberty/upl/pipeline.hpp"

#include <map>

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"

namespace liberty::upl {

using liberty::core::AckMode;
using liberty::core::bwd;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::fwd;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::pcl::MemReq;
using liberty::pcl::MemResp;

namespace {

/// Does this instruction architecturally write rd?
bool writes_rd(const Instr& i) {
  if (i.rd == 0) return false;
  if (is_alu(i.op) || i.op == Op::Lw) return true;
  return i.op == Op::Jal || i.op == Op::Jalr;
}

/// Does this instruction read rs2?
bool reads_rs2(const Instr& i) {
  switch (i.op) {
    case Op::Add: case Op::Sub: case Op::Mul: case Op::Div: case Op::Rem:
    case Op::And: case Op::Or: case Op::Xor: case Op::Sll: case Op::Srl:
    case Op::Sra: case Op::Slt:
    case Op::Sw:
    case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      return true;
    default:
      return false;
  }
}

bool reads_rs1(const Instr& i) {
  switch (i.op) {
    case Op::Halt: case Op::Nop: case Op::Jal:
      return false;
    default:
      return true;
  }
}

std::shared_ptr<InstrToken> clone(const InstrToken& t) {
  return std::make_shared<InstrToken>(t);
}

}  // namespace

// ---------------------------------------------------------------------------
// CoreHub
// ---------------------------------------------------------------------------

namespace {
std::map<std::string, std::shared_ptr<CoreState>>& hub_map() {
  static std::map<std::string, std::shared_ptr<CoreState>> m;
  return m;
}
}  // namespace

std::shared_ptr<CoreState> CoreHub::get(const std::string& core_name) {
  auto& m = hub_map();
  auto it = m.find(core_name);
  if (it == m.end()) {
    it = m.emplace(core_name, std::make_shared<CoreState>()).first;
  }
  return it->second;
}

void CoreHub::reset() { hub_map().clear(); }

// ---------------------------------------------------------------------------
// StageBase
// ---------------------------------------------------------------------------

namespace detail {

StageBase::StageBase(const std::string& name, const Params& params,
                     bool has_in, bool has_out)
    : Module(name) {
  if (has_in) in_ = &add_in("in", AckMode::Managed, 0, 1);
  if (has_out) out_ = &add_out("out", 0, 1);
  const std::string core = params.get_string("core", "");
  if (!core.empty()) state_ = CoreHub::get(core);
}

void StageBase::init() {
  if (!state_) {
    throw liberty::ElaborationError(
        "pipeline stage '" + name() +
        "' has no core state: set the 'core' parameter or use "
        "build_inorder_core()");
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// FetchStage
// ---------------------------------------------------------------------------

FetchStage::FetchStage(const std::string& name, const Params& params)
    : StageBase(name, params, /*has_in=*/false, /*has_out=*/true),
      resolve_(add_in("resolve", AckMode::AutoAccept, 0, 1)),
      pred_(make_predictor(params.get_string("predictor", "bimodal"),
                           static_cast<std::size_t>(
                               params.get_int("predictor_entries", 1024)))),
      btb_(static_cast<std::size_t>(params.get_int("btb_entries", 512))) {
  program_src_ = params.get_string("program", "");
}

void FetchStage::init() {
  StageBase::init();
  if (!program_src_.empty() && state_->program.code.empty()) {
    state_->program = assemble(program_src_, name() + ":program");
  }
}

liberty::Value FetchStage::make_token() {
  static const Instr kHalt{Op::Halt, 0, 0, 0, 0};
  const Instr& i = pc_ < state_->program.code.size()
                       ? state_->program.code[pc_]
                       : kHalt;
  auto tok = std::make_shared<InstrToken>();
  tok->pc = pc_;
  tok->seq = next_seq_++;
  tok->epoch = state_->epoch;
  tok->instr = i;

  std::uint64_t next = pc_ + 1;
  switch (i.op) {
    case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge: {
      const bool dir = pred_->predict(pc_);
      tok->pred_taken = dir;
      tok->pred_target = static_cast<std::uint64_t>(i.imm);
      if (dir) next = tok->pred_target;
      break;
    }
    case Op::Jal:
      tok->pred_taken = true;
      tok->pred_target = static_cast<std::uint64_t>(i.imm);
      next = tok->pred_target;
      break;
    case Op::Jalr: {
      std::uint64_t t;
      if (btb_.lookup(pc_, t)) {
        tok->pred_taken = true;
        tok->pred_target = t;
        next = t;
      } else {
        tok->pred_taken = false;
        tok->pred_target = pc_ + 1;
      }
      break;
    }
    case Op::Halt:
      stalled_on_halt_ = true;  // fetch no further until a squash
      break;
    default:
      break;
  }
  pc_ = next;
  stats().counter("fetched").inc();
  return liberty::Value(std::static_pointer_cast<const Payload>(
      std::shared_ptr<const InstrToken>(std::move(tok))));
}

void FetchStage::cycle_start(Cycle) {
  if (state_->redirect) {
    pc_ = *state_->redirect;
    state_->redirect.reset();
    slot_.reset();             // wrong-path fetch in the slot, if any
    stalled_on_halt_ = false;  // a wrong-path HALT no longer blocks us
  }
  if (!slot_ && !state_->halted && !stalled_on_halt_) slot_ = make_token();
  if (slot_) {
    out_->send(*slot_);
  } else {
    out_->idle();
  }
}

void FetchStage::end_of_cycle() {
  if (out_->transferred()) slot_.reset();
  if (!resolve_.transferred()) return;
  const auto r = resolve_.data().as<Resolution>();
  if (r->is_conditional) {
    pred_->update(r->branch_pc, r->taken);
    stats().counter(r->mispredicted ? "mispredicts" : "correct_predictions")
        .inc();
  }
  if (r->taken) btb_.insert(r->branch_pc, r->target);
  // The redirect itself was applied via CoreState::redirect at the top of
  // the cycle after the squash; here we only train.
}

void FetchStage::declare_deps(Deps& deps) const {
  deps.state_only(*out_);
}

// ---------------------------------------------------------------------------
// DecodeStage
// ---------------------------------------------------------------------------

DecodeStage::DecodeStage(const std::string& name, const Params& params)
    : StageBase(name, params, true, true) {}

void DecodeStage::cycle_start(Cycle) {
  if (held_) {
    out_->send(*held_);
  } else {
    out_->idle();
  }
}

void DecodeStage::react() {
  if (in_->ack_driven() || !in_->forward_known()) return;
  if (!in_->has_data()) {
    in_->nack();
    return;
  }
  const auto tok = in_->data().as<InstrToken>();
  if (tok->epoch != state_->epoch) {
    in_->ack();  // swallow and discard the wrong-path instruction
    return;
  }
  // Scoreboard interlock: stall while sources or destination are busy.
  const Instr& i = tok->instr;
  const bool hazard = (reads_rs1(i) && state_->reg_busy(i.rs1)) ||
                      (reads_rs2(i) && state_->reg_busy(i.rs2)) ||
                      (writes_rd(i) && state_->reg_busy(i.rd));
  if (hazard) {
    stats().counter("hazard_stalls").inc();
    in_->nack();
    return;
  }
  // Accept once our slot is (or becomes) free.
  if (!held_) {
    in_->ack();
  } else if (out_->ack_known()) {
    if (out_->acked()) {
      in_->ack();
    } else {
      in_->nack();
    }
  }
}

void DecodeStage::end_of_cycle() {
  if (out_->transferred()) held_.reset();
  if (!in_->transferred()) return;
  const auto tok = in_->data().as<InstrToken>();
  if (tok->epoch != state_->epoch) {
    ++state_->squashed;
    return;
  }
  auto dec = clone(*tok);
  dec->a = state_->regs[tok->instr.rs1];
  dec->b = state_->regs[tok->instr.rs2];
  if (writes_rd(tok->instr)) state_->mark_busy(tok->instr.rd, tok->seq);
  held_ = liberty::Value(std::static_pointer_cast<const Payload>(
      std::shared_ptr<const InstrToken>(std::move(dec))));
  stats().counter("decoded").inc();
}

void DecodeStage::declare_deps(Deps& deps) const {
  deps.state_only(*out_);
  deps.depends(*in_, {fwd(*in_), bwd(*out_)});
}

// ---------------------------------------------------------------------------
// ExecuteStage
// ---------------------------------------------------------------------------

ExecuteStage::ExecuteStage(const std::string& name, const Params& params)
    : StageBase(name, params, true, true),
      resolve_(add_out("resolve", 0, 1)),
      mul_latency_(static_cast<std::uint64_t>(params.get_int("mul_latency", 3))),
      div_latency_(
          static_cast<std::uint64_t>(params.get_int("div_latency", 12))) {}

void ExecuteStage::cycle_start(Cycle c) {
  if (held_ && c >= ready_) {
    out_->send(*held_);
  } else {
    out_->idle();
  }
  if (resolution_) {
    resolve_.send(*resolution_);
  } else {
    resolve_.idle();
  }
}

void ExecuteStage::react() {
  if (in_->ack_driven() || !in_->forward_known()) return;
  if (!in_->has_data()) {
    in_->nack();
    return;
  }
  const auto tok = in_->data().as<InstrToken>();
  if (tok->epoch != state_->epoch) {
    in_->ack();  // swallow wrong-path work
    return;
  }
  if (resolution_) {
    in_->nack();  // one branch resolution in flight at a time
    return;
  }
  if (!held_) {
    in_->ack();
  } else if (out_->sent() && out_->ack_known()) {
    if (out_->acked()) {
      in_->ack();
    } else {
      in_->nack();
    }
  } else if (now() < ready_) {
    in_->nack();  // multi-cycle op still executing
  }
}

void ExecuteStage::end_of_cycle() {
  if (out_->transferred()) held_.reset();
  if (resolve_.transferred()) resolution_.reset();
  if (!in_->transferred()) return;
  const auto tok = in_->data().as<InstrToken>();
  if (tok->epoch != state_->epoch) {
    ++state_->squashed;
    return;
  }

  auto ex = clone(*tok);
  ex->result = evaluate(tok->instr, tok->a, tok->b, tok->pc);
  std::uint64_t latency = 1;
  if (tok->instr.op == Op::Mul) latency = mul_latency_;
  if (tok->instr.op == Op::Div || tok->instr.op == Op::Rem) {
    latency = div_latency_;
  }
  ready_ = now() + latency;
  stats().counter("executed").inc();

  if (is_branch(tok->instr.op)) {
    const std::uint64_t actual_next =
        ex->result.taken ? ex->result.target : tok->pc + 1;
    const std::uint64_t predicted_next =
        tok->pred_taken ? tok->pred_target : tok->pc + 1;
    auto res = std::make_shared<Resolution>();
    res->branch_pc = tok->pc;
    res->branch_seq = tok->seq;
    res->taken = ex->result.taken;
    res->target = actual_next;
    res->mispredicted = actual_next != predicted_next;
    res->is_conditional = tok->instr.op != Op::Jal &&
                          tok->instr.op != Op::Jalr;
    if (res->mispredicted) {
      // Squash immediately: younger in-flight instructions are wrong-path.
      ++state_->epoch;
      state_->squash_after(tok->seq);
      state_->redirect = actual_next;
      stats().counter("squashes").inc();
    }
    resolution_ = liberty::Value(std::static_pointer_cast<const Payload>(
        std::shared_ptr<const Resolution>(std::move(res))));
  }

  held_ = liberty::Value(std::static_pointer_cast<const Payload>(
      std::shared_ptr<const InstrToken>(std::move(ex))));
}

void ExecuteStage::declare_deps(Deps& deps) const {
  deps.state_only(*out_);
  deps.state_only(resolve_);
  deps.depends(*in_, {fwd(*in_), bwd(*out_)});
}

// ---------------------------------------------------------------------------
// MemStage
// ---------------------------------------------------------------------------

MemStage::MemStage(const std::string& name, const Params& params)
    : StageBase(name, params, true, true),
      dreq_(add_out("dreq", 0, 1)),
      dresp_(add_in("dresp", AckMode::Managed, 0, 1)) {}

void MemStage::cycle_start(Cycle) {
  if (held_) {
    out_->send(*held_);
  } else {
    out_->idle();
  }
  if (waiting_ && !req_sent_) {
    dreq_.send(pending_req_);
  } else {
    dreq_.idle();
  }
  // Accept a memory response only when the writeback slot is free.
  if (!held_) {
    dresp_.ack();
  } else {
    dresp_.nack();
  }
}

void MemStage::react() {
  if (in_->ack_driven() || !in_->forward_known()) return;
  if (!in_->has_data()) {
    in_->nack();
    return;
  }
  if (waiting_) {
    in_->nack();  // memory operation in flight blocks the stage
    return;
  }
  if (!held_) {
    in_->ack();
  } else if (out_->ack_known()) {
    if (out_->acked()) {
      in_->ack();
    } else {
      in_->nack();
    }
  }
}

void MemStage::end_of_cycle() {
  if (out_->transferred()) held_.reset();
  if (dreq_.transferred()) req_sent_ = true;

  if (dresp_.transferred()) {
    const auto resp = dresp_.data().as<MemResp>();
    const auto tok = waiting_->as<InstrToken>();
    auto done = clone(*tok);
    if (tok->instr.op == Op::Lw) done->result.value = resp->data;
    held_ = liberty::Value(std::static_pointer_cast<const Payload>(
        std::shared_ptr<const InstrToken>(std::move(done))));
    waiting_.reset();
    req_sent_ = false;
  } else if (waiting_) {
    stats().counter("mem_stall_cycles").inc();
  }

  if (!in_->transferred()) return;
  const auto tok = in_->data().as<InstrToken>();
  if (is_mem(tok->instr.op)) {
    const std::uint64_t tag = next_tag_++;
    pending_req_ =
        tok->instr.op == Op::Lw
            ? liberty::Value::make<MemReq>(MemReq::Op::Read,
                                           tok->result.mem_addr, 0, tag)
            : liberty::Value::make<MemReq>(MemReq::Op::Write,
                                           tok->result.mem_addr,
                                           tok->result.value, tag);
    waiting_ = in_->data();
    req_sent_ = false;
    stats().counter(tok->instr.op == Op::Lw ? "loads" : "stores").inc();
  } else {
    held_ = in_->data();
  }
}

void MemStage::declare_deps(Deps& deps) const {
  deps.state_only(*out_);
  deps.state_only(dreq_);
  deps.state_only(dresp_);
  deps.depends(*in_, {fwd(*in_), bwd(*out_)});
}

// ---------------------------------------------------------------------------
// WritebackStage
// ---------------------------------------------------------------------------

WritebackStage::WritebackStage(const std::string& name, const Params& params)
    : StageBase(name, params, true, /*has_out=*/false),
      stop_on_halt_(params.get_bool("stop_on_halt", true)) {}

void WritebackStage::cycle_start(Cycle) { in_->ack(); }

void WritebackStage::end_of_cycle() {
  if (!in_->transferred()) return;
  const auto tok = in_->data().as<InstrToken>();
  const Instr& i = tok->instr;
  if (writes_rd(i)) {
    state_->regs[i.rd] = tok->result.value;
    state_->clear_busy(i.rd, tok->seq);
  }
  if (tok->result.out) state_->output.push_back(*tok->result.out);
  ++state_->retired;
  stats().counter("retired").inc();
  if (tok->result.halts) {
    state_->halted = true;
    if (stop_on_halt_) request_stop();
  }
}

void WritebackStage::declare_deps(Deps& deps) const {
  deps.state_only(*in_);
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

InorderCore build_inorder_core(Netlist& netlist, const std::string& prefix,
                               const Program& program, const Params& params) {
  InorderCore core;
  core.state = std::make_shared<CoreState>();
  core.state->program = program;

  core.fetch = &netlist.make<FetchStage>(prefix + ".fetch", params);
  core.decode = &netlist.make<DecodeStage>(prefix + ".decode", params);
  core.exec = &netlist.make<ExecuteStage>(prefix + ".exec", params);
  core.mem = &netlist.make<MemStage>(prefix + ".mem", params);
  core.wb = &netlist.make<WritebackStage>(prefix + ".wb", params);

  for (detail::StageBase* s :
       {static_cast<detail::StageBase*>(core.fetch),
        static_cast<detail::StageBase*>(core.decode),
        static_cast<detail::StageBase*>(core.exec),
        static_cast<detail::StageBase*>(core.mem),
        static_cast<detail::StageBase*>(core.wb)}) {
    s->set_state(core.state);
  }

  netlist.connect(core.fetch->out("out"), core.decode->in("in"));
  netlist.connect(core.decode->out("out"), core.exec->in("in"));
  netlist.connect(core.exec->out("out"), core.mem->in("in"));
  netlist.connect(core.mem->out("out"), core.wb->in("in"));
  netlist.connect(core.exec->out("resolve"), core.fetch->in("resolve"));
  return core;
}

}  // namespace liberty::upl
