// Compiled backend (liberty::gen): lowering, disassembly, execution
// equivalence against the dynamic scheduler, and snapshot/restore under the
// threaded-code interpreter.  The heavier cross-scheduler guarantees live in
// the differential oracle (test_fuzz*, test_opt); these are the direct unit
// tests of the bytecode itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/core/state.hpp"
#include "liberty/gen/compiled_scheduler.hpp"
#include "test_util.hpp"

namespace {

using liberty::Value;
using liberty::core::Connection;
using liberty::core::Cycle;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using liberty::gen::CompiledScheduler;
using liberty::gen::Instr;
using liberty::gen::Op;
using liberty::pcl::Queue;
using liberty::pcl::Sink;
using liberty::pcl::Source;
using liberty::test::params;

void build_pipeline(Netlist& nl) {
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 50}, {"period", 1}}));
  auto& q = nl.make<Queue>("q", params({{"depth", 4}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), q.in("in"));
  nl.connect(q.out("out"), sink.in("in"));
  nl.finalize();
}

std::size_t count_ops(const std::vector<Instr>& tape, Op op) {
  std::size_t n = 0;
  for (const Instr& in : tape) n += in.op == op ? 1 : 0;
  return n;
}

TEST(GenLowering, PipelineDevirtualizesEveryStockModule) {
  Netlist nl;
  build_pipeline(nl);
  CompiledScheduler sched(nl);
  const auto& prog = sched.program();

  // Every tape is Halt-terminated.
  ASSERT_FALSE(prog.start.empty());
  ASSERT_FALSE(prog.resolve.empty());
  ASSERT_FALSE(prog.commit.empty());
  EXPECT_EQ(prog.start.back().op, Op::Halt);
  EXPECT_EQ(prog.resolve.back().op, Op::Halt);
  EXPECT_EQ(prog.commit.back().op, Op::Halt);

  // All three modules are stock kinds: no CALL_VIRTUAL fallbacks.
  EXPECT_EQ(prog.virtual_ops, 0u);
  EXPECT_GT(prog.devirt_ops, 0u);

  // Start phase: Source and Queue override cycle_start, Sink does not —
  // two devirtualized start instructions, nothing virtual or gated.
  EXPECT_EQ(count_ops(prog.start, Op::StartSource), 1u);
  EXPECT_EQ(count_ops(prog.start, Op::StartQueue), 1u);
  EXPECT_EQ(count_ops(prog.start, Op::StartVirtual), 0u);
  EXPECT_EQ(count_ops(prog.start, Op::StartGated), 0u);
  EXPECT_EQ(prog.start.size(), 3u);  // 2 starts + Halt

  // Commit phase: all three override end_of_cycle.
  EXPECT_EQ(count_ops(prog.commit, Op::EndSource), 1u);
  EXPECT_EQ(count_ops(prog.commit, Op::EndQueue), 1u);
  EXPECT_EQ(count_ops(prog.commit, Op::EndSink), 1u);
  EXPECT_EQ(prog.commit.size(), 4u);

  // Resolve phase: src->q forward has a non-reacting driver (Source has no
  // react) so it lowers to the default resolution; q's backward react is
  // devirtualized; the sink ack is an AutoAck.
  EXPECT_GE(count_ops(prog.resolve, Op::DefFwd), 1u);
  EXPECT_EQ(count_ops(prog.resolve, Op::BwdQueue), 1u);
  EXPECT_EQ(count_ops(prog.resolve, Op::AutoAck), 1u);
  EXPECT_EQ(count_ops(prog.resolve, Op::FwdVirtual), 0u);
  EXPECT_EQ(count_ops(prog.resolve, Op::BwdVirtual), 0u);
}

TEST(GenLowering, SubclassFallsBackToVirtualOpcodes) {
  // Exact-typeid matching: a user subclass of a stock kind must not be
  // devirtualized (its overrides would be skipped).
  class TracedQueue final : public Queue {
   public:
    using Queue::Queue;
  };
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "counter"}, {"count", 10}, {"period", 1}}));
  auto& q = nl.make<TracedQueue>("tq", params({{"depth", 2}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), q.in("in"));
  nl.connect(q.out("out"), sink.in("in"));
  nl.finalize();

  CompiledScheduler sched(nl);
  const auto& prog = sched.program();
  EXPECT_GT(prog.virtual_ops, 0u);
  EXPECT_EQ(count_ops(prog.start, Op::StartQueue), 0u);
  EXPECT_EQ(count_ops(prog.start, Op::StartVirtual), 1u);
  EXPECT_EQ(count_ops(prog.resolve, Op::BwdQueue), 0u);
  EXPECT_EQ(count_ops(prog.resolve, Op::BwdVirtual), 1u);
  EXPECT_EQ(count_ops(prog.commit, Op::EndVirtual), 1u);

  // And the fallback is behaviourally identical: the pipeline still runs.
  Simulator sim(nl, SchedulerKind::Dynamic);
  sim.run(40);
  EXPECT_EQ(sink.consumed(), 10u);
}

TEST(GenLowering, DisassemblyNamesModulesAndTapes) {
  Netlist nl;
  build_pipeline(nl);
  CompiledScheduler sched(nl);
  const std::string dis = sched.disassemble();

  EXPECT_NE(dis.find("== start ("), std::string::npos);
  EXPECT_NE(dis.find("== resolve ("), std::string::npos);
  EXPECT_NE(dis.find("== commit ("), std::string::npos);
  EXPECT_NE(dis.find("StartSource"), std::string::npos);
  EXPECT_NE(dis.find("EndSink"), std::string::npos);
  EXPECT_NE(dis.find("AutoAck"), std::string::npos);
  EXPECT_NE(dis.find("Halt"), std::string::npos);
  // Symbolic operands: instance names appear in the listing.
  EXPECT_NE(dis.find("src"), std::string::npos);
  EXPECT_NE(dis.find("sink"), std::string::npos);
}

TEST(GenLowering, CountersReportLoweringStatistics) {
  Netlist nl;
  build_pipeline(nl);
  CompiledScheduler sched(nl);

  std::uint64_t devirt = ~0ull, virt = ~0ull, resolve_ops = 0;
  sched.visit_counters([&](std::string_view name, std::uint64_t value) {
    if (name == "gen.devirtualized_ops") devirt = value;
    if (name == "gen.virtual_fallback_ops") virt = value;
    if (name == "gen.resolve_ops") resolve_ops = value;
  });
  EXPECT_EQ(devirt, sched.program().devirt_ops);
  EXPECT_EQ(virt, 0u);
  EXPECT_EQ(resolve_ops, sched.program().resolve.size() - 1);
}

TEST(GenExecution, MatchesDynamicSchedulerBitForBit) {
  liberty::gen::ensure_registered();

  auto run_one = [](SchedulerKind kind, std::vector<std::string>& transfers,
                    std::uint64_t& consumed) {
    Netlist nl;
    auto& src = nl.make<Source>(
        "src", params({{"kind", "random"}, {"rate", 0.7}, {"seed", 7},
                       {"period", 0}, {"stamp", true}}));
    auto& q = nl.make<Queue>("q", params({{"depth", 3}}));
    auto& sink = nl.make<Sink>("sink", Params());
    nl.connect(src.out("out"), q.in("in"));
    nl.connect(q.out("out"), sink.in("in"));
    nl.finalize();

    Simulator sim(nl, kind);
    sim.observe_transfers([&transfers](const Connection& c, Cycle cycle) {
      transfers.push_back(std::to_string(cycle) + ":" +
                          std::to_string(c.id()) + "=" + c.data().to_string());
    });
    sim.run(300);
    consumed = sink.consumed();
    return sim.snapshot().digest();
  };

  std::vector<std::string> dyn_t, comp_t;
  std::uint64_t dyn_c = 0, comp_c = 0;
  const auto dyn_digest = run_one(SchedulerKind::Dynamic, dyn_t, dyn_c);
  const auto comp_digest = run_one(SchedulerKind::Compiled, comp_t, comp_c);

  EXPECT_EQ(dyn_digest, comp_digest);
  EXPECT_EQ(dyn_t, comp_t);
  EXPECT_EQ(dyn_c, comp_c);
  EXPECT_GT(comp_c, 0u);
}

TEST(GenExecution, SimulatorConstructsCompiledSchedulerViaFactory) {
  liberty::gen::ensure_registered();
  Netlist nl;
  build_pipeline(nl);
  Simulator sim(nl, SchedulerKind::Compiled);
  EXPECT_EQ(sim.scheduler().kind_name(), "compiled");
  sim.run(100);
  EXPECT_EQ(sim.scheduler().cycles_run(), 100u);
}

TEST(GenExecution, SnapshotRestoreReplaysIdentically) {
  liberty::gen::ensure_registered();
  Netlist nl;
  auto& src = nl.make<Source>(
      "src", params({{"kind", "random"}, {"rate", 0.5}, {"seed", 21},
                     {"period", 0}}));
  auto& q = nl.make<Queue>("q", params({{"depth", 2}}));
  auto& sink = nl.make<Sink>("sink", Params());
  nl.connect(src.out("out"), q.in("in"));
  nl.connect(q.out("out"), sink.in("in"));
  nl.finalize();

  Simulator sim(nl, SchedulerKind::Compiled);
  sim.run(50);
  const auto snap = sim.snapshot();

  sim.run(50);
  const auto first_digest = sim.snapshot().digest();

  sim.restore(snap);
  EXPECT_EQ(sim.snapshot().digest(), snap.digest());
  sim.run(50);
  EXPECT_EQ(sim.snapshot().digest(), first_digest);
}

}  // namespace
