#include "liberty/nil/fabric_adapter.hpp"

#include "liberty/pcl/payloads.hpp"
#include "liberty/support/error.hpp"

namespace liberty::nil {

using liberty::core::AckMode;
using liberty::core::bwd;
using liberty::core::Deps;
using liberty::core::fwd;
using liberty::core::Params;
using liberty::ccl::Flit;

FabricAdapter::FabricAdapter(const std::string& name, const Params& params)
    : Module(name),
      msg_in_(add_in("msg_in", AckMode::Managed, 0, 1)),
      net_out_(add_out("net_out", 0, 1)),
      net_in_(add_in("net_in", AckMode::Managed, 0, 1)),
      msg_out_(add_out("msg_out", 0, 1)),
      id_num_(static_cast<std::size_t>(params.get_int("id", 0))),
      vcs_(static_cast<std::size_t>(params.get_int("vcs", 2))) {}

void FabricAdapter::react() {
  // Outbound: wrap the offered message into a flit, once per cycle.
  if (msg_in_.forward_known() && !net_out_.forward_known()) {
    if (msg_in_.has_data()) {
      const liberty::Value& msg = msg_in_.data();
      const auto payload = msg.try_as<Payload>();
      const auto* routable =
          payload ? dynamic_cast<const pcl::Routable*>(payload.get())
                  : nullptr;
      if (routable == nullptr) {
        throw liberty::SimulationError("nil.fabric_adapter '" + name() +
                                       "': message is not Routable");
      }
      auto flit = std::make_shared<Flit>(
          next_packet_ | (static_cast<std::uint64_t>(id_num_) << 40),
          id_num_, routable->route_key(), now(), next_packet_ % vcs_);
      flit->body = msg;
      net_out_.send(liberty::Value(
          std::static_pointer_cast<const Payload>(std::move(flit))));
    } else {
      net_out_.idle();
    }
  }
  if (!msg_in_.ack_driven() && net_out_.ack_known()) {
    if (net_out_.acked()) {
      msg_in_.ack();
    } else {
      msg_in_.nack();
    }
  }

  // Inbound: unwrap.
  if (net_in_.forward_known() && !msg_out_.forward_known()) {
    if (net_in_.has_data()) {
      msg_out_.send(net_in_.data().as<Flit>()->body);
    } else {
      msg_out_.idle();
    }
  }
  if (!net_in_.ack_driven() && msg_out_.ack_known()) {
    if (msg_out_.acked()) {
      net_in_.ack();
    } else {
      net_in_.nack();
    }
  }
}

void FabricAdapter::end_of_cycle() {
  if (net_out_.transferred()) {
    ++next_packet_;
    stats().counter("tx").inc();
  }
  if (net_in_.transferred()) stats().counter("rx").inc();
}

void FabricAdapter::save_state(liberty::core::StateWriter& w) const {
  w.put_u64(next_packet_);
}

void FabricAdapter::load_state(liberty::core::StateReader& r) {
  next_packet_ = r.get_u64();
}

void FabricAdapter::declare_deps(Deps& deps) const {
  deps.depends(net_out_, {fwd(msg_in_)});
  deps.depends(msg_in_, {fwd(msg_in_), bwd(net_out_)});
  deps.depends(msg_out_, {fwd(net_in_)});
  deps.depends(net_in_, {fwd(net_in_), bwd(msg_out_)});
}

}  // namespace liberty::nil
