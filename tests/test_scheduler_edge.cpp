// Scheduler edge cases: degenerate netlists and re-entrant runs must work
// identically under all three schedulers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "liberty/testing/netspec.hpp"
#include "liberty/testing/oracle.hpp"
#include "test_util.hpp"

namespace {

using liberty::Value;
using liberty::core::Connection;
using liberty::core::Cycle;
using liberty::core::Netlist;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using liberty::test::params;
using liberty::test::registry;

const SchedulerKind kAllKinds[] = {SchedulerKind::Dynamic,
                                   SchedulerKind::Static,
                                   SchedulerKind::Parallel};

TEST(SchedulerEdge, EmptyNetlistRunsEveryScheduler) {
  for (const SchedulerKind kind : kAllKinds) {
    Netlist netlist;
    netlist.finalize();
    Simulator sim(netlist, kind, 2);
    EXPECT_EQ(sim.run(10), 10u);
    EXPECT_EQ(sim.now(), 10u);
  }
}

TEST(SchedulerEdge, SingleModuleNetlist) {
  // One module, zero connections: nothing to resolve, but hooks still run.
  for (const SchedulerKind kind : kAllKinds) {
    liberty::testing::NetSpec spec;
    spec.modules.push_back({"pcl.sink", "only", {}});
    Netlist netlist;
    spec.build(netlist, registry());
    Simulator sim(netlist, kind, 4);
    EXPECT_EQ(sim.run(25), 25u);
  }
}

TEST(SchedulerEdge, MoreThreadsThanModules) {
  // A 3-module pipeline under 16 worker threads: most threads idle every
  // wave, and the result must still match the reference bit for bit.
  liberty::testing::NetSpec spec;
  spec.modules.push_back({"pcl.source", "src",
                          params({{"kind", Value(std::string("counter"))},
                                  {"period", Value(std::int64_t{1})}})});
  spec.modules.push_back(
      {"pcl.queue", "q", params({{"depth", Value(std::int64_t{2})}})});
  spec.modules.push_back({"pcl.sink", "snk", {}});
  spec.edges.push_back({0, "out", 1, "in"});
  spec.edges.push_back({1, "out", 2, "in"});
  spec.cycles = 100;

  liberty::testing::OracleConfig cfg;
  cfg.candidates = {{SchedulerKind::Parallel, 16}};
  const liberty::testing::OracleResult r = run_oracle(spec, registry(), cfg);
  EXPECT_TRUE(r.ok) << r.report();
}

TEST(SchedulerEdge, RunIsReentrantAfterStop) {
  liberty::testing::NetSpec spec;
  spec.modules.push_back({"pcl.source", "src",
                          params({{"kind", Value(std::string("counter"))},
                                  {"period", Value(std::int64_t{1})}})});
  spec.modules.push_back(
      {"pcl.sink", "snk",
       params({{"stop_after", Value(std::int64_t{10})}})});
  spec.edges.push_back({0, "out", 1, "in"});

  for (const SchedulerKind kind : kAllKinds) {
    Netlist netlist;
    spec.build(netlist, registry());
    Simulator sim(netlist, kind, 2);

    const Cycle first = sim.run(100);
    EXPECT_GT(first, 0u);
    EXPECT_LT(first, 100u) << "stop_after never fired";

    // run() clears the pending stop on entry, so a second call resumes;
    // the sink's stop condition still holds and re-stops after one cycle.
    const Cycle second = sim.run(100);
    EXPECT_GE(second, 1u);
    EXPECT_LT(second, 100u);
    EXPECT_EQ(sim.now(), first + second);
  }
}

}  // namespace
