# Empty dependencies file for sensor_node.
# This may be replaced when dependencies are built.
