#include "liberty/obs/trace.hpp"

#include <cstdio>
#include <string>

#include "liberty/core/simulator.hpp"

namespace liberty::obs {

namespace {
constexpr int kKernelPid = 1;
constexpr int kTransferPid = 2;
constexpr std::uint64_t kLaneTidBase = 100;
}  // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os)
    : os_(os), writer_(os), t0_(std::chrono::steady_clock::now()) {
  writer_.begin_object();
  writer_.field("displayTimeUnit", "ms");
  writer_.begin_array("traceEvents");
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                "\"args\":{\"name\":\"liberty kernel\"}}",
                kKernelPid);
  emit(buf);
  std::snprintf(buf, sizeof buf,
                "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                "\"args\":{\"name\":\"transfers\"}}",
                kTransferPid);
  emit(buf);
  emit_thread_name(kKernelPid, 0, "scheduler");
}

ChromeTraceWriter::~ChromeTraceWriter() { finish(); }

void ChromeTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  writer_.end_array();
  writer_.end_object();
  os_.flush();
}

double ChromeTraceWriter::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

void ChromeTraceWriter::emit(const char* json) {
  writer_.element_raw(json);
  ++events_;
}

void ChromeTraceWriter::emit_thread_name(int pid, std::uint64_t tid,
                                         const char* name) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\"ph\":\"M\",\"pid\":%d,\"tid\":%llu,"
                "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                pid, static_cast<unsigned long long>(tid), name);
  emit(buf);
}

void ChromeTraceWriter::on_phase(liberty::core::SchedPhase phase,
                                 liberty::core::Cycle c, double seconds) {
  if (finished_) return;
  const double dur = seconds * 1e6;
  const double ts = now_us() - dur;
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "{\"ph\":\"X\",\"pid\":%d,\"tid\":0,\"name\":\"%.*s\","
                "\"cat\":\"phase\",\"ts\":%.3f,\"dur\":%.3f,"
                "\"args\":{\"cycle\":%llu}}",
                kKernelPid,
                static_cast<int>(liberty::core::phase_name(phase).size()),
                liberty::core::phase_name(phase).data(), ts, dur,
                static_cast<unsigned long long>(c));
  emit(buf);
}

void ChromeTraceWriter::on_wave(liberty::core::Cycle c, std::size_t wave,
                                std::size_t clusters, double seconds) {
  if (finished_) return;
  const double dur = seconds * 1e6;
  const double ts = now_us() - dur;
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "{\"ph\":\"X\",\"pid\":%d,\"tid\":0,\"name\":\"wave %zu\","
                "\"cat\":\"wave\",\"ts\":%.3f,\"dur\":%.3f,"
                "\"args\":{\"cycle\":%llu,\"clusters\":%zu}}",
                kKernelPid, wave, ts, dur,
                static_cast<unsigned long long>(c), clusters);
  emit(buf);
}

void ChromeTraceWriter::on_lane(liberty::core::Cycle c, std::size_t wave,
                                unsigned lane, double busy_seconds) {
  if (finished_) return;
  const std::uint64_t tid = kLaneTidBase + lane;
  if (lane < 64 && (named_lanes_ & (1ULL << lane)) == 0) {
    named_lanes_ |= 1ULL << lane;
    char name[32];
    std::snprintf(name, sizeof name, "lane %u", lane);
    emit_thread_name(kKernelPid, tid, name);
  }
  const double dur = busy_seconds * 1e6;
  const double ts = now_us() - dur;
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "{\"ph\":\"X\",\"pid\":%d,\"tid\":%llu,\"name\":\"busy\","
                "\"cat\":\"lane\",\"ts\":%.3f,\"dur\":%.3f,"
                "\"args\":{\"cycle\":%llu,\"wave\":%zu}}",
                kKernelPid, static_cast<unsigned long long>(tid), ts, dur,
                static_cast<unsigned long long>(c), wave);
  emit(buf);
}

void ChromeTraceWriter::attach_transfers(liberty::core::Simulator& sim) {
  for (const auto& mod : sim.netlist().modules()) {
    emit_thread_name(kTransferPid, mod->id(),
                     json_escape(mod->name()).c_str());
  }
  sim.observe_transfers(
      [this](const liberty::core::Connection& conn, liberty::core::Cycle c) {
        if (finished_) return;
        const double ts = now_us();
        const std::uint64_t id = ++flow_ids_;
        const std::string name =
            json_escape(conn.producer()->name() + "\xe2\x86\x92" +
                        conn.consumer()->name());
        char buf[320];
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"s\",\"pid\":%d,\"tid\":%llu,"
                      "\"name\":\"%s\",\"cat\":\"transfer\",\"id\":%llu,"
                      "\"ts\":%.3f,\"args\":{\"cycle\":%llu,\"conn\":%llu}}",
                      kTransferPid,
                      static_cast<unsigned long long>(conn.producer()->id()),
                      name.c_str(), static_cast<unsigned long long>(id), ts,
                      static_cast<unsigned long long>(c),
                      static_cast<unsigned long long>(conn.id()));
        emit(buf);
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":%d,\"tid\":%llu,"
                      "\"name\":\"%s\",\"cat\":\"transfer\",\"id\":%llu,"
                      "\"ts\":%.3f}",
                      kTransferPid,
                      static_cast<unsigned long long>(conn.consumer()->id()),
                      name.c_str(), static_cast<unsigned long long>(id),
                      ts + 1.0);
        emit(buf);
      });
}

}  // namespace liberty::obs
