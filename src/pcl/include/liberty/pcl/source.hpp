// Source: configurable producer of values — the workload end of most
// testbenches and the base class of the CCL's statistical traffic
// generators (§2.2's "statistical packet generator").
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"
#include "liberty/support/rng.hpp"

namespace liberty::pcl {

/// Emits values on its single output port.
///
/// Parameters:
///   kind        "counter" (0,1,2,...), "token" (empty tokens), or
///               "random" (uniform ints in [0, range))       [counter]
///   period      emit one value every `period` cycles (0 = use rate) [1]
///   rate        Bernoulli emission probability per cycle (used when
///               period == 0)                                 [0.0]
///   count       stop after this many values (0 = unlimited)  [0]
///   start       first cycle at which emission may occur      [0]
///   range       value range for kind=random                  [1024]
///   seed        RNG seed                                     [1]
///   queue_depth backlog capacity for open-loop injection; arrivals
///               beyond it are counted as dropped (0 = unbounded) [0]
///   stamp       wrap values in pcl::Stamped carrying the arrival cycle
///               so sinks can compute latency                 [false]
///
/// Stats: emitted, dropped, backlog (accumulator).
class Source : public liberty::core::Module {
 public:
  Source(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;
  void declare_opt(liberty::core::OptTraits& traits) const override;
  void save_state(liberty::core::StateWriter& w) const override;
  void load_state(liberty::core::StateReader& r) override;

  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }

  // Parameter introspection (native codegen eligibility analysis).
  [[nodiscard]] const std::string& value_kind() const noexcept {
    return kind_;
  }
  [[nodiscard]] std::uint64_t period() const noexcept { return period_; }
  [[nodiscard]] std::uint64_t start_cycle() const noexcept { return start_; }
  [[nodiscard]] std::uint64_t count_limit() const noexcept { return count_; }
  [[nodiscard]] std::size_t backlog_capacity() const noexcept {
    return queue_depth_;
  }
  [[nodiscard]] bool stamps() const noexcept { return stamp_; }

 protected:
  /// Hook for subclasses: the value for the seq-th generated item.
  [[nodiscard]] virtual liberty::Value make_value(std::uint64_t seq);

  /// Hook for subclasses: does an arrival occur this cycle?  The default
  /// implements period/rate arrivals.
  [[nodiscard]] virtual bool arrival_now(liberty::core::Cycle c);

  liberty::Rng rng_;

 private:
  liberty::core::Port& out_;
  std::string kind_;
  std::uint64_t period_;
  double rate_;
  std::uint64_t count_;
  std::uint64_t start_;
  std::int64_t range_;
  std::size_t queue_depth_;
  bool stamp_;

  std::deque<liberty::Value> backlog_;
  std::uint64_t generated_ = 0;
  std::uint64_t emitted_ = 0;

  // Resolved-once stat handles (see StatSet::bind).
  liberty::Accumulator* backlog_stat_ = nullptr;
  liberty::Counter* emitted_stat_ = nullptr;
  liberty::Counter* dropped_stat_ = nullptr;
};

}  // namespace liberty::pcl
