// Cache model (§3.2: "realistic cache configurations" composed
// hierarchically) — a parameterizable set-associative cache.
//
// Two layers:
//  * CacheModel — the pure replacement/lookup engine (unit-testable, reused
//    by MPL's coherence controllers for their local line state).
//  * CacheModule — the LSE component: cpu-side req/resp ports, memory-side
//    req/resp ports, miss handling with a fixed number of MSHRs.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "liberty/core/module.hpp"
#include "liberty/core/params.hpp"
#include "liberty/support/rng.hpp"

namespace liberty::upl {

/// Pure set-associative array: tags, line state, replacement policy.
/// Addresses are word addresses; a line holds `line_words` words.
class CacheModel {
 public:
  enum class Replacement : std::uint8_t { Lru, Fifo, Random };

  CacheModel(std::size_t sets, std::size_t ways, std::size_t line_words,
             Replacement repl, std::uint64_t seed = 7);

  struct Line {
    bool valid = false;
    bool dirty = false;
    std::uint64_t tag = 0;
    std::uint64_t stamp = 0;  // LRU/FIFO bookkeeping
    std::int64_t meta = 0;    // free field for coherence state (MPL)
  };

  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::size_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::size_t line_words() const noexcept { return line_words_; }

  [[nodiscard]] std::uint64_t line_addr(std::uint64_t addr) const noexcept {
    return addr / line_words_ * line_words_;
  }
  [[nodiscard]] std::size_t set_of(std::uint64_t addr) const noexcept {
    return static_cast<std::size_t>((addr / line_words_) % sets_);
  }
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const noexcept {
    return addr / line_words_ / sets_;
  }

  /// Find the line holding `addr`; null when absent.  Non-const variant
  /// refreshes LRU on hit when `touch`.
  [[nodiscard]] Line* lookup(std::uint64_t addr, bool touch = true);
  [[nodiscard]] const Line* lookup(std::uint64_t addr) const;

  /// Choose (and return) a victim way in addr's set; the line is NOT yet
  /// overwritten.  The caller inspects valid/dirty for writeback.
  [[nodiscard]] Line& victim(std::uint64_t addr);

  /// Install `addr`'s line into `way` (obtained from victim()).
  void fill(Line& way, std::uint64_t addr, bool dirty);

  /// Drop the line holding `addr` (coherence invalidation).  Returns true
  /// when a line was present.
  bool invalidate(std::uint64_t addr);

  /// Reconstruct the base word address of a (set, line) pair — needed when
  /// evicting a victim to know where its data must be written back.
  [[nodiscard]] std::uint64_t addr_of(const Line& line,
                                      std::size_t set) const noexcept {
    return (line.tag * sets_ + set) * line_words_;
  }

  [[nodiscard]] std::vector<Line>& set_lines(std::size_t set) {
    return lines_[set];
  }

  /// Serialize the array (geometry is structural and not saved) so the
  /// embedding module's save_state can include its cache.
  void save(liberty::core::StateWriter& w) const;
  void load(liberty::core::StateReader& r);

 private:
  std::size_t sets_;
  std::size_t ways_;
  std::size_t line_words_;
  Replacement repl_;
  std::uint64_t clock_ = 0;
  liberty::Rng rng_;
  std::vector<std::vector<Line>> lines_;
};

[[nodiscard]] CacheModel::Replacement replacement_from_string(
    const std::string& s);

/// The cache component.
///
/// Ports:
///   cpu_req (in), cpu_resp (out) — pcl::MemReq / pcl::MemResp
///   mem_req (out), mem_resp (in) — line fills and writebacks downstream
///
/// Parameters:
///   sets, ways, line_words, replacement ("lru"|"fifo"|"random"),
///   hit_latency, mshrs, write_allocate (bool, default true)
///
/// Stats: hits, misses, evictions, writebacks, accesses.
class CacheModule : public liberty::core::Module {
 public:
  CacheModule(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;

  [[nodiscard]] const CacheModel& model() const noexcept { return model_; }
  [[nodiscard]] double miss_rate() const {
    const auto a = stats().counter_value("accesses");
    return a == 0 ? 0.0
                  : static_cast<double>(stats().counter_value("misses")) /
                        static_cast<double>(a);
  }

 private:
  struct Mshr {
    std::uint64_t line = 0;                 // line being fetched
    std::uint64_t tag = 0;                  // matches the LineResp
    std::vector<liberty::Value> waiters;    // coalesced cpu requests
  };

  liberty::core::Port& cpu_req_;
  liberty::core::Port& cpu_resp_;
  liberty::core::Port& mem_req_;
  liberty::core::Port& mem_resp_;

  CacheModel model_;
  std::uint64_t hit_latency_;
  std::size_t mshr_limit_;
  bool write_allocate_ = true;

  std::deque<Mshr> mshrs_;
  std::deque<liberty::Value> resp_queue_;        // completed cpu responses
  std::deque<liberty::core::Cycle> resp_ready_;  // earliest delivery cycles
  std::deque<liberty::Value> memq_;              // outgoing memory requests
  std::uint64_t next_fill_tag_ = 1;
  std::shared_ptr<struct CacheModuleState> line_data_;  // cached line words

  void handle_cpu_request(const liberty::Value& v);
};

}  // namespace liberty::upl
