#include "liberty/ccl/wireless.hpp"

#include "liberty/support/error.hpp"

namespace liberty::ccl {

using liberty::core::AckMode;
using liberty::core::Cycle;
using liberty::core::Deps;
using liberty::core::Params;

WirelessChannel::WirelessChannel(const std::string& name,
                                 const Params& params)
    : Module(name),
      in_(add_in("in", AckMode::Managed, 1)),
      out_(add_out("out", 1)),
      airtime_(static_cast<std::uint64_t>(params.get_int("airtime", 8))),
      loss_(params.get_real("loss", 0.0)),
      rng_(static_cast<std::uint64_t>(params.get_int("seed", 1))) {
  if (airtime_ == 0) {
    throw liberty::ElaborationError("ccl.wireless '" + name +
                                    "': airtime must be >= 1");
  }
}

void WirelessChannel::cycle_start(Cycle c) {
  if (busy_ && c >= free_at_) {
    busy_ = false;
    // Transmission finished: schedule delivery (if it survived).  If the
    // previous delivery is still waiting on a stalled receiver, the new
    // packet is lost (receiver overrun).
    if (has_payload_) {
      if (delivered_pending_) {
        stats().counter("lost").inc();
        stats().counter("overruns").inc();
      } else {
        delivered_pending_ = true;
        on_air_ = tx_value_;
        dst_ = tx_dst_;
      }
      has_payload_ = false;
    }
  }
  for (std::size_t o = 0; o < out_.width(); ++o) {
    if (delivered_pending_ && o == dst_) {
      out_.send_at(o, on_air_);
    } else {
      out_.idle(o);
    }
  }
  if (busy_) stats().counter("busy_cycles").inc();
}

void WirelessChannel::react() {
  if (busy_) {
    // Carrier sense: medium occupied, everyone defers.
    for (std::size_t i = 0; i < in_.width(); ++i) in_.nack(i);
    return;
  }
  // Medium idle: every station that starts now transmits; two or more
  // starting together collide.
  for (std::size_t i = 0; i < in_.width(); ++i) {
    if (!in_.forward_known(i)) return;
  }
  for (std::size_t i = 0; i < in_.width(); ++i) {
    if (in_.has_data(i)) {
      in_.ack(i);  // the packet goes on the air (and may be lost)
    } else {
      in_.nack(i);
    }
  }
}

void WirelessChannel::end_of_cycle() {
  if (delivered_pending_ && out_.transferred(dst_)) {
    delivered_pending_ = false;
    stats().counter("delivered").inc();
  }

  std::vector<std::size_t> started;
  for (std::size_t i = 0; i < in_.width(); ++i) {
    if (in_.transferred(i)) started.push_back(i);
  }
  if (started.empty()) return;
  stats().counter("sent").inc(started.size());
  busy_ = true;
  free_at_ = now() + airtime_;
  if (started.size() > 1) {
    stats().counter("collisions").inc();
    stats().counter("lost").inc(started.size());
    has_payload_ = false;
    return;
  }
  const liberty::Value v = in_.data(started.front());
  const auto flit = v.try_as<Flit>();
  if (flit == nullptr) {
    throw liberty::SimulationError("ccl.wireless '" + name() +
                                   "': non-flit value on the air");
  }
  if (rng_.chance(loss_)) {
    stats().counter("lost").inc();
    has_payload_ = false;
    return;
  }
  has_payload_ = true;
  tx_value_ = v;
  tx_dst_ = flit->dst % out_.width();
}

void WirelessChannel::save_state(liberty::core::StateWriter& w) const {
  liberty::core::save_rng(w, rng_);
  w.put_bool(busy_);
  w.put_u64(free_at_);
  w.put_bool(has_payload_);
  w.put(tx_value_);
  w.put_size(tx_dst_);
  w.put(on_air_);
  w.put_size(dst_);
  w.put_bool(delivered_pending_);
}

void WirelessChannel::load_state(liberty::core::StateReader& r) {
  liberty::core::load_rng(r, rng_);
  busy_ = r.get_bool();
  free_at_ = r.get_u64();
  has_payload_ = r.get_bool();
  tx_value_ = r.get();
  tx_dst_ = r.get_size();
  on_air_ = r.get();
  dst_ = r.get_size();
  delivered_pending_ = r.get_bool();
}

void WirelessChannel::declare_deps(Deps& deps) const {
  deps.state_only(out_);
  deps.depends(in_, {liberty::core::fwd(in_)});
}

}  // namespace liberty::ccl
