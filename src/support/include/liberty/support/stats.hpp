// Statistics collection shared by every component library.
//
// Each module owns a StatSet; the simulator aggregates them for reporting.
// Counters and histograms are deliberately simple value types so that a
// module can update them on the hot path without indirection.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace liberty {

/// Monotonically increasing event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) noexcept { value_ += by; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Running scalar statistic: count, sum, min, max, mean.
class Accumulator {
 public:
  void add(double x) noexcept {
    ++count_;
    sum_ += x;
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  void reset() noexcept { *this = Accumulator(); }

  /// Fold a sub-aggregate into this accumulator, exactly as if its samples
  /// had been add()ed here one by one.  Backends that keep shadow
  /// statistics outside the module objects (native codegen) flush through
  /// this at synchronization points; for integer-valued samples — every
  /// accumulator the stock components keep — the partial double sums are
  /// exact, so merging is bit-identical to direct accumulation.
  void merge(std::uint64_t count, double sum, double mn, double mx) noexcept {
    if (count == 0) return;
    min_ = count_ == 0 ? mn : std::min(min_, mn);
    max_ = count_ == 0 ? mx : std::max(max_, mx);
    count_ += count;
    sum_ += sum;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width-bucket histogram over [0, bucket_width * bucket_count), with
/// an overflow bucket.  Used for latency and occupancy distributions.
class Histogram {
 public:
  explicit Histogram(std::size_t buckets = 64, double width = 1.0)
      : width_(width), counts_(buckets + 1, 0) {}

  void add(double x) noexcept {
    acc_.add(x);
    auto idx = x < 0 ? std::size_t{0}
                     : static_cast<std::size_t>(x / width_);
    counts_[std::min(idx, counts_.size() - 1)]++;
  }

  [[nodiscard]] const Accumulator& summary() const noexcept { return acc_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] double bucket_width() const noexcept { return width_; }

  /// Value below which `q` (clamped to 0..1) of the samples fall,
  /// estimated as the upper edge of the bucket containing the ceil(q*n)-th
  /// sample.  An empty histogram and q <= 0 both report 0; q = 1 reports
  /// the upper edge of the last occupied bucket (samples beyond the last
  /// regular bucket land in the overflow bucket, whose upper edge is
  /// buckets() * bucket_width()).
  [[nodiscard]] double quantile(double q) const noexcept {
    const std::uint64_t n = acc_.count();
    if (n == 0 || q <= 0.0) return 0.0;
    if (q > 1.0) q = 1.0;
    // ceil without <cmath>: the rank of the sample we must reach.
    auto target = static_cast<std::uint64_t>(q * static_cast<double>(n));
    if (static_cast<double>(target) < q * static_cast<double>(n)) ++target;
    if (target == 0) target = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= target) return static_cast<double>(i + 1) * width_;
    }
    return static_cast<double>(counts_.size()) * width_;
  }

 private:
  double width_;
  Accumulator acc_;
  std::vector<std::uint64_t> counts_;
};

/// Named collection of statistics owned by a module instance.
class StatSet {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Accumulator& accumulator(const std::string& name) { return accs_[name]; }
  Histogram& histogram(const std::string& name, std::size_t buckets = 64,
                       double width = 1.0) {
    auto it = hists_.find(name);
    if (it == hists_.end()) {
      it = hists_.emplace(name, Histogram(buckets, width)).first;
    }
    return it->second;
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }

  /// Resolve-once handles for hot-path updates.  `counter()` et al. walk a
  /// string-keyed map on every call; modules that bump the same statistic
  /// every cycle cache the returned pointer instead.  Map nodes are stable
  /// for the StatSet's lifetime, so the pointer never dangles.  Binding
  /// happens on first *use* (not at construction) so the entry appears in
  /// dumps at exactly the same point as with uncached lookups.
  void bind(Counter*& slot, const std::string& name) {
    if (slot == nullptr) slot = &counter(name);
  }
  void bind(Accumulator*& slot, const std::string& name) {
    if (slot == nullptr) slot = &accumulator(name);
  }
  void bind(Histogram*& slot, const std::string& name,
            std::size_t buckets = 64, double width = 1.0) {
    if (slot == nullptr) slot = &histogram(name, buckets, width);
  }
  [[nodiscard]] const std::map<std::string, Accumulator>& accumulators()
      const {
    return accs_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return hists_;
  }

  /// Counter value or zero when absent (reporting convenience).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }

  void dump(std::ostream& os, const std::string& prefix) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Accumulator> accs_;
  std::map<std::string, Histogram> hists_;
};

}  // namespace liberty
