// lss_run: the Liberty simulator constructor as a command-line tool.
//
//   lss_run SPEC.lss [options]
//     --cycles N          cycles to simulate                [10000]
//     --param NAME=VALUE  override a top-level param (repeatable;
//                         integers, reals, true/false, or strings)
//     --scheduler dyn|static|parallel                       [static]
//     --threads N         worker threads for --scheduler parallel
//                         (0 = hardware concurrency)        [0]
//     --dot FILE          write the netlist as Graphviz DOT and exit
//     --vcd FILE          also record a VCD transfer waveform
//     --quiet             suppress the statistics dump
//
// This is the Figure-1 pipeline end to end: specification in, executable
// simulator out, with the full component catalog available.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/lss/elaborator.hpp"
#include "liberty/core/lss/parser.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/core/vcd.hpp"
#include "liberty/mpl/mpl.hpp"
#include "liberty/nil/nil.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/upl/upl.hpp"

namespace {

liberty::Value parse_value(const std::string& text) {
  if (text == "true") return liberty::Value(true);
  if (text == "false") return liberty::Value(false);
  try {
    std::size_t used = 0;
    if (text.find('.') != std::string::npos ||
        text.find('e') != std::string::npos) {
      const double d = std::stod(text, &used);
      if (used == text.size()) return liberty::Value(d);
    } else {
      const long long i = std::stoll(text, &used);
      if (used == text.size()) {
        return liberty::Value(static_cast<std::int64_t>(i));
      }
    }
  } catch (const std::exception&) {
    // falls through to string
  }
  return liberty::Value(text);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s SPEC.lss [--cycles N] [--param NAME=VALUE]...\n"
               "       [--scheduler dyn|static|parallel] [--threads N]\n"
               "       [--dot FILE] [--vcd FILE] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  std::string spec_path;
  std::uint64_t cycles = 10'000;
  std::map<std::string, liberty::Value> overrides;
  auto kind = liberty::core::SchedulerKind::Static;
  unsigned threads = 0;
  std::string dot_path;
  std::string vcd_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--cycles") {
      cycles = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--param") {
      const std::string kv = next();
      const auto eq = kv.find('=');
      if (eq == std::string::npos) return usage(argv[0]);
      overrides[kv.substr(0, eq)] = parse_value(kv.substr(eq + 1));
    } else if (arg == "--scheduler") {
      try {
        kind = liberty::core::scheduler_kind_from_name(next());
      } catch (const liberty::Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--dot") {
      dot_path = next();
    } else if (arg == "--vcd") {
      vcd_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      spec_path = arg;
    }
  }
  if (spec_path.empty()) return usage(argv[0]);

  liberty::core::ModuleRegistry registry;
  liberty::pcl::register_pcl(registry);
  liberty::upl::register_upl(registry);
  liberty::ccl::register_ccl(registry);
  liberty::mpl::register_mpl(registry);
  liberty::nil::register_nil(registry);

  try {
    const auto spec = liberty::core::lss::parse_file(spec_path);
    liberty::core::Netlist netlist;
    liberty::core::lss::Elaborator elab(registry);
    elab.elaborate(spec, netlist, overrides);
    netlist.finalize();

    if (!dot_path.empty()) {
      std::ofstream dot(dot_path);
      netlist.write_dot(dot);
      std::printf("wrote %s (%zu instances, %zu connections)\n",
                  dot_path.c_str(), netlist.module_count(),
                  netlist.connection_count());
      return 0;
    }

    liberty::core::Simulator sim(netlist, kind, threads);
    std::unique_ptr<liberty::core::VcdTracer> tracer;
    std::ofstream vcd_file;
    if (!vcd_path.empty()) {
      vcd_file.open(vcd_path);
      tracer = std::make_unique<liberty::core::VcdTracer>(netlist, vcd_file);
      tracer->attach(sim);
    }

    const auto ran = sim.run(cycles);
    if (tracer) tracer->finish();

    std::printf("%s: %zu instances, %zu connections, %llu cycles simulated\n",
                spec_path.c_str(), netlist.module_count(),
                netlist.connection_count(),
                static_cast<unsigned long long>(ran));
    if (!quiet) netlist.dump_stats(std::cout);
    return 0;
  } catch (const liberty::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
