// NetSpec: a rebuildable description of one netlist.
//
// The differential oracle needs to run the *same* system under several
// schedulers, and snapshot bisection needs to construct fresh simulators at
// will — but Netlist is neither copyable nor resettable.  NetSpec is the
// answer: a plain-data recipe (module declarations + connection edges) that
// elaborates a fresh, identical Netlist on demand through the shared
// ModuleRegistry, exactly the way the LSS elaborator would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/core/netlist.hpp"
#include "liberty/core/params.hpp"
#include "liberty/core/registry.hpp"
#include "liberty/core/types.hpp"

namespace liberty::testing {

struct ModuleDecl {
  std::string type;  // registry key, e.g. "pcl.queue"
  std::string name;  // instance name, unique within the spec
  liberty::core::Params params;
};

/// One connection: output port `from_port` of module `from` to input port
/// `to_port` of module `to`.  Endpoints are assigned in declaration order
/// (Netlist::connect picks the next free endpoint), so edge order is part
/// of the spec's identity.
struct EdgeDecl {
  std::size_t from = 0;
  std::string from_port;
  std::size_t to = 0;
  std::string to_port;
};

struct NetSpec {
  std::vector<ModuleDecl> modules;
  std::vector<EdgeDecl> edges;
  liberty::core::Cycle cycles = 200;  // suggested simulation length

  /// Elaborate into `netlist` (instantiate every module, connect every
  /// edge, finalize).  Throws ElaborationError on an invalid spec.
  void build(liberty::core::Netlist& netlist,
             const liberty::core::ModuleRegistry& registry) const;

  /// Human-readable rendering (failure reports, --print-spec).
  [[nodiscard]] std::string render() const;
};

}  // namespace liberty::testing
