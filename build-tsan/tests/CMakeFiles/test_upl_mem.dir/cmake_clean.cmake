file(REMOVE_RECURSE
  "CMakeFiles/test_upl_mem.dir/test_upl_mem.cpp.o"
  "CMakeFiles/test_upl_mem.dir/test_upl_mem.cpp.o.d"
  "test_upl_mem"
  "test_upl_mem.pdb"
  "test_upl_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upl_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
