// liberty_fuzz: command-line driver for the differential fuzz harness.
//
// Generates seeded random netlists, runs each under the dynamic reference
// scheduler plus a battery of candidates (static, parallel at several
// thread counts), and reports any divergence down to the exact cycle via
// snapshot/restore bisection.  Every run is reproducible from its seed:
//
//   liberty_fuzz --seed 42                 # one netlist, full oracle
//   liberty_fuzz --seed 1 --count 500      # seeds 1..500
//   liberty_fuzz --seed 7 --print-spec     # show the generated netlist
//   liberty_fuzz --seed 7 --shrink         # reduce a failure to a minimal
//                                          # reproducer before reporting
//   liberty_fuzz --seed 7 --inject-fault static:50:1
//                                          # test the harness itself: corrupt
//                                          # one scheduler and watch the
//                                          # oracle catch and bisect it
//
// Exit status: 0 = all seeds passed, 1 = divergence found, 2 = bad usage.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/scheduler.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/testing/fuzzer.hpp"
#include "liberty/testing/netspec.hpp"
#include "liberty/testing/oracle.hpp"
#include "liberty/testing/shrink.hpp"

namespace {

constexpr const char* kUsage = R"(usage: liberty_fuzz [options]
  --seed S            first seed (default 1)
  --count N           number of consecutive seeds to run (default 1)
  --cycles C          cycle budget per netlist (default 200)
  --snapshot-every K  snapshot interval for the oracle (default 16)
  --feedback P        probability of a feedback ring, 0..1 (default 0.5)
  --no-arbiter        exclude pcl.arbiter from the module mix
  --no-tee            exclude pcl.tee
  --no-crossbar       exclude pcl.crossbar
  --no-mux            exclude pcl.mux
  --no-buffer         exclude pcl.buffer
  --no-ccl            exclude ccl.traffic_gen / ccl.traffic_sink
  --print-spec        print each generated netlist before running it
  --shrink            on failure, shrink to a minimal reproducer
  --no-bisect         skip snapshot/restore bisection on divergence
  --inject-fault K:C:N  corrupt scheduler K (dynamic|static|parallel) from
                      cycle C on connection N (harness self-test)
  --help              this text
)";

struct Options {
  std::uint64_t seed = 1;
  std::uint64_t count = 1;
  liberty::testing::FuzzConfig fuzz;
  liberty::testing::OracleConfig oracle;
  bool print_spec = false;
  bool shrink = false;
  bool fault_installed = false;
};

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_fault(const std::string& arg, liberty::core::SchedulerFault& f) {
  const std::size_t c1 = arg.find(':');
  const std::size_t c2 = arg.find(':', c1 == std::string::npos ? c1 : c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) return false;
  f.scheduler_kind = arg.substr(0, c1);
  std::uint64_t cycle = 0;
  std::uint64_t conn = 0;
  if (!parse_u64(arg.substr(c1 + 1, c2 - c1 - 1).c_str(), cycle)) return false;
  if (!parse_u64(arg.substr(c2 + 1).c_str(), conn)) return false;
  if (f.scheduler_kind != "dynamic" && f.scheduler_kind != "static" &&
      f.scheduler_kind != "parallel") {
    return false;
  }
  f.from_cycle = cycle;
  f.connection = static_cast<liberty::core::ConnId>(conn);
  return true;
}

int parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "liberty_fuzz: " << a << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else if (a == "--seed") {
      const char* v = next();
      if (v == nullptr || !parse_u64(v, opt.seed)) return 2;
    } else if (a == "--count") {
      const char* v = next();
      if (v == nullptr || !parse_u64(v, opt.count)) return 2;
    } else if (a == "--cycles") {
      std::uint64_t c = 0;
      const char* v = next();
      if (v == nullptr || !parse_u64(v, c) || c == 0) return 2;
      opt.fuzz.cycles = static_cast<liberty::core::Cycle>(c);
    } else if (a == "--snapshot-every") {
      std::uint64_t k = 0;
      const char* v = next();
      if (v == nullptr || !parse_u64(v, k) || k == 0) return 2;
      opt.oracle.snapshot_every = static_cast<liberty::core::Cycle>(k);
    } else if (a == "--feedback") {
      const char* v = next();
      if (v == nullptr) return 2;
      opt.fuzz.feedback_prob = std::strtod(v, nullptr);
    } else if (a == "--no-arbiter") {
      opt.fuzz.use_arbiter = false;
    } else if (a == "--no-tee") {
      opt.fuzz.use_tee = false;
    } else if (a == "--no-crossbar") {
      opt.fuzz.use_crossbar = false;
    } else if (a == "--no-mux") {
      opt.fuzz.use_mux = false;
    } else if (a == "--no-buffer") {
      opt.fuzz.use_buffer = false;
    } else if (a == "--no-ccl") {
      opt.fuzz.use_ccl_traffic = false;
    } else if (a == "--print-spec") {
      opt.print_spec = true;
    } else if (a == "--shrink") {
      opt.shrink = true;
    } else if (a == "--no-bisect") {
      opt.oracle.bisect = false;
    } else if (a == "--inject-fault") {
      liberty::core::SchedulerFault fault;
      const char* v = next();
      if (v == nullptr || !parse_fault(v, fault)) {
        std::cerr << "liberty_fuzz: --inject-fault wants kind:cycle:conn\n";
        return 2;
      }
      liberty::core::install_scheduler_fault_for_testing(fault);
      opt.fault_installed = true;
    } else {
      std::cerr << "liberty_fuzz: unknown option " << a << "\n" << kUsage;
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const int rc = parse_args(argc, argv, opt); rc != 0) return rc;

  liberty::core::ModuleRegistry registry;
  liberty::pcl::register_pcl(registry);
  liberty::ccl::register_ccl(registry);

  std::uint64_t failures = 0;
  for (std::uint64_t s = opt.seed; s < opt.seed + opt.count; ++s) {
    liberty::testing::NetSpec spec;
    try {
      spec = liberty::testing::generate_netlist(s, opt.fuzz);
    } catch (const std::exception& e) {
      std::cerr << "seed " << s << ": generator error: " << e.what() << "\n";
      return 1;
    }
    if (opt.print_spec) {
      std::cout << "# seed " << s << "\n" << spec.render();
    }

    liberty::testing::OracleResult result;
    try {
      result = liberty::testing::run_oracle(spec, registry, opt.oracle);
    } catch (const std::exception& e) {
      std::cerr << "seed " << s << ": oracle error: " << e.what() << "\n"
                << spec.render();
      ++failures;
      continue;
    }
    if (result.ok) {
      if (opt.count == 1 || opt.print_spec) {
        std::cout << "seed " << s << ": ok (" << spec.modules.size()
                  << " modules, " << spec.edges.size() << " connections, "
                  << spec.cycles << " cycles)\n";
      }
      continue;
    }

    ++failures;
    std::cout << "seed " << s << ": DIVERGENCE\n" << result.report();
    if (opt.shrink) {
      liberty::testing::ShrinkStats st;
      const liberty::testing::NetSpec reduced =
          liberty::testing::shrink_netlist(spec, registry, opt.oracle, &st);
      std::cout << "shrink: " << spec.modules.size() << " -> "
                << reduced.modules.size() << " modules ("
                << st.attempts << " candidates, " << st.accepted
                << " accepted)\n"
                << "minimal reproducer:\n" << reduced.render()
                << liberty::testing::run_oracle(reduced, registry, opt.oracle)
                       .report();
    } else {
      std::cout << "reproduce with: liberty_fuzz --seed " << s
                << " --cycles " << spec.cycles << " --print-spec\n";
    }
  }

  if (opt.fault_installed) liberty::core::clear_scheduler_fault_for_testing();
  if (opt.count > 1) {
    std::cout << (opt.count - failures) << "/" << opt.count
              << " seeds passed\n";
  }
  return failures == 0 ? 0 : 1;
}
