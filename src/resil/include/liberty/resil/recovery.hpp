// Checkpoint/rollback recovery: the policy layer that turns detection into
// continued service.
//
// A Supervisor owns the simulate-detect-recover loop: it builds the
// simulator, wires in an optional FaultInjector and Watchdog, takes a
// kernel snapshot every `checkpoint_every` cycles, and reacts to aborted
// cycles according to a RecoveryPolicy:
//
//   abort       re-throw semantics: record the error and stop (the
//               baseline "fail fast" behaviour)
//   rollback    mask every fault site whose onset has been reached, rewind
//               to the latest checkpoint, and replay.  Detection happens
//               pre-commit (watchdog) or pre-cycle (injected handler
//               faults), so checkpoints hold fault-free state and the
//               replayed run is bit-identical to a never-faulted one —
//               test_resil proves trace hashes and state digests match.
//   quarantine  blame a module (the handler that threw, or the consumer of
//               the faulted connection), swap it to the paper's default
//               control semantics via Netlist::quarantine, rebuild the
//               simulator, and resume from the checkpoint.  The run
//               completes but is *not* trace-identical — see
//               docs/resilience.md for when this is acceptable.
//
// Soundness note: rollback is only bit-exact when every fault is detected
// at its first observable effect (watchdog with a recorded baseline, or
// faults that abort on their own).  An undetected fault that survives past
// a checkpoint is baked into that checkpoint; rollback then reproduces it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "liberty/core/simulator.hpp"
#include "liberty/core/types.hpp"
#include "liberty/resil/watchdog.hpp"

namespace liberty::resil {

class FaultInjector;

enum class RecoveryPolicy : std::uint8_t { Abort, RollbackRetry, Quarantine };

/// Stable wire name ("abort", "rollback", "quarantine").
[[nodiscard]] std::string_view policy_name(RecoveryPolicy p) noexcept;
/// Inverse of policy_name; throws liberty::Error on unknown names.
[[nodiscard]] RecoveryPolicy policy_from_name(std::string_view name);

struct SupervisorConfig {
  core::SchedulerKind scheduler = core::SchedulerKind::Static;
  unsigned threads = 0;            // parallel scheduler only
  core::Cycle checkpoint_every = 64;  // 0 = only the initial checkpoint
  RecoveryPolicy policy = RecoveryPolicy::Abort;
  int max_recoveries = 4;          // rollbacks + quarantines before giving up
  std::uint64_t iteration_cap = 0;  // 0 = scheduler default
};

struct RecoveryReport {
  bool completed = false;
  core::Cycle cycles = 0;  // simulated cycles at exit
  int rollbacks = 0;
  int quarantines = 0;
  std::vector<std::string> events;  // human-readable recovery log
  std::string error;                // terminal error when !completed
  std::vector<std::uint64_t> trace_hashes;  // per-cycle transfer hashes
  std::uint64_t state_digest = 0;           // final KernelSnapshot digest

  [[nodiscard]] std::uint64_t trace_digest() const {
    return fold_trace(trace_hashes);
  }
  [[nodiscard]] std::string summary() const;
};

class Supervisor {
 public:
  /// `injector` and `watchdog` are optional and must outlive the
  /// supervisor.  The watchdog is attached with throw-on-violation forced
  /// on — detection must abort the cycle pre-commit or rollback would
  /// replay the fault.
  Supervisor(core::Netlist& netlist, SupervisorConfig cfg,
             FaultInjector* injector = nullptr, Watchdog* watchdog = nullptr);
  virtual ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Run up to `cycles` cycles under supervision (early stop via
  /// Module::request_stop counts as completion).
  [[nodiscard]] RecoveryReport run(core::Cycle cycles);

  [[nodiscard]] core::Simulator* simulator() noexcept { return sim_.get(); }

 protected:
  // Extension seams for durable supervision (resil/durable.hpp).  All three
  // run between cycles on the main thread, with sim_ built and valid.
  /// After build_simulator(), before the initial checkpoint — a durable
  /// subclass restores the newest valid on-disk checkpoint here.
  virtual void on_run_start(RecoveryReport& rep) { (void)rep; }
  /// After every in-memory take_checkpoint() — a durable subclass spills
  /// checkpoint_ to disk here.
  virtual void on_checkpoint(RecoveryReport& rep) { (void)rep; }
  /// After every successfully committed cycle (not after rollbacks).
  virtual void on_cycle_committed(core::Cycle now) { (void)now; }

  void build_simulator();
  void take_checkpoint();
  /// React to an aborted cycle at `at`; returns false to give up.
  [[nodiscard]] bool recover(RecoveryReport& rep, core::Cycle at,
                             const std::string& why);

  core::Netlist& netlist_;
  SupervisorConfig cfg_;
  FaultInjector* injector_;
  Watchdog* watchdog_;
  TraceRecorder recorder_;
  std::unique_ptr<core::Simulator> sim_;
  core::KernelSnapshot checkpoint_;
};

}  // namespace liberty::resil
