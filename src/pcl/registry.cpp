#include "liberty/pcl/pcl.hpp"

namespace liberty::pcl {

using liberty::core::ModuleRegistry;
using liberty::core::simple_factory;

void register_pcl(ModuleRegistry& r) {
  r.register_template("pcl.source", "configurable value producer",
                      simple_factory<Source>());
  r.register_template("pcl.sink", "value consumer with latency stats",
                      simple_factory<Sink>());
  r.register_template("pcl.queue", "FIFO with handshake flow control",
                      simple_factory<Queue>());
  r.register_template("pcl.delay", "fixed-latency pipeline element",
                      simple_factory<Delay>());
  r.register_template("pcl.arbiter", "N-to-1 arbiter (RR/priority/LRU)",
                      simple_factory<Arbiter>());
  r.register_template("pcl.tee", "synchronous fan-out",
                      simple_factory<Tee>());
  r.register_template("pcl.mux", "control-selected N-to-1 multiplexer",
                      simple_factory<Mux>());
  r.register_template("pcl.demux", "content-routed 1-to-N demultiplexer",
                      simple_factory<Demux>());
  r.register_template("pcl.crossbar", "N x M crossbar with RR arbitration",
                      simple_factory<Crossbar>());
  r.register_template("pcl.buffer",
                      "generalized buffer (window/ROB/router buffer)",
                      simple_factory<Buffer>());
  r.register_template("pcl.memory_array", "request/response storage",
                      simple_factory<MemoryArray>());
  r.register_template("pcl.probe", "pass-through instrumentation",
                      simple_factory<Probe>());
  r.register_template("pcl.funcmap", "combinational value transform",
                      simple_factory<FuncMap>());
}

}  // namespace liberty::pcl
