// Disassembler for the compiled backend (lss_run --dump-bytecode, golden
// tests).  One instruction per line with symbolic operands: module names
// for hook opcodes, connection descriptions for channel opcodes, so a
// listing is meaningful without the netlist at hand.
#include <cstdio>
#include <string>

#include "liberty/core/netlist.hpp"
#include "liberty/gen/compiled_scheduler.hpp"

namespace liberty::gen {

namespace core = liberty::core;

const char* op_name(Op op) noexcept {
  switch (op) {
#define LIBERTY_GEN_NAME(K) \
  case Op::Start##K:        \
    return "Start" #K;
    LIBERTY_GEN_START_KINDS(LIBERTY_GEN_NAME)
#undef LIBERTY_GEN_NAME
    case Op::StartGated:
      return "StartGated";
    case Op::StartVirtual:
      return "StartVirtual";
    case Op::TrySleep:
      return "TrySleep";
    case Op::RunScc:
      return "RunScc";
    case Op::Chain:
      return "Chain";
    case Op::AutoAck:
      return "AutoAck";
    case Op::DefFwd:
      return "DefFwd";
    case Op::DefBwd:
      return "DefBwd";
#define LIBERTY_GEN_NAME(K) \
  case Op::Fwd##K:          \
    return "Fwd" #K;
    LIBERTY_GEN_REACT_KINDS(LIBERTY_GEN_NAME)
#undef LIBERTY_GEN_NAME
    case Op::FwdVirtual:
      return "FwdVirtual";
#define LIBERTY_GEN_NAME(K) \
  case Op::Bwd##K:          \
    return "Bwd" #K;
    LIBERTY_GEN_REACT_KINDS(LIBERTY_GEN_NAME)
#undef LIBERTY_GEN_NAME
    case Op::BwdVirtual:
      return "BwdVirtual";
#define LIBERTY_GEN_NAME(K) \
  case Op::End##K:          \
    return "End" #K;
    LIBERTY_GEN_COMMIT_KINDS(LIBERTY_GEN_NAME)
#undef LIBERTY_GEN_NAME
    case Op::EndGated:
      return "EndGated";
    case Op::EndVirtual:
      return "EndVirtual";
    case Op::Halt:
      return "Halt";
  }
  return "?";
}

namespace {

enum class Operands { Module, ModuleConn, Conn, Sleep, Scc, Chain, None };

Operands operands_of(Op op) {
  switch (op) {
    case Op::TrySleep:
      return Operands::Sleep;
    case Op::RunScc:
      return Operands::Scc;
    case Op::Chain:
      return Operands::Chain;
    case Op::AutoAck:
    case Op::DefFwd:
    case Op::DefBwd:
      return Operands::Conn;
    case Op::FwdVirtual:
    case Op::BwdVirtual:
      return Operands::ModuleConn;
    case Op::Halt:
      return Operands::None;
    default:
      break;
  }
#define LIBERTY_GEN_MC(K) \
  if (op == Op::Fwd##K || op == Op::Bwd##K) return Operands::ModuleConn;
  LIBERTY_GEN_REACT_KINDS(LIBERTY_GEN_MC)
#undef LIBERTY_GEN_MC
  return Operands::Module;  // every remaining opcode names one module
}

}  // namespace

std::string CompiledScheduler::disassemble() const {
  std::string out;
  const auto& modules = netlist_.modules();
  const auto& conns = netlist_.connections();

  auto dump_tape = [&](const char* title, const std::vector<Instr>& tape) {
    out += "== ";
    out += title;
    out += " (";
    out += std::to_string(tape.size() - 1);
    out += " ops) ==\n";
    char buf[64];
    for (std::size_t i = 0; i < tape.size(); ++i) {
      const Instr& in = tape[i];
      std::snprintf(buf, sizeof buf, "  %04zu  %-14s", i, op_name(in.op));
      out += buf;
      switch (operands_of(in.op)) {
        case Operands::Module:
          out += "  ";
          out += modules[in.a]->name();
          break;
        case Operands::ModuleConn:
          out += "  ";
          out += modules[in.a]->name();
          out += "  [";
          out += conns[in.b]->describe();
          out += "]";
          break;
        case Operands::Conn:
          out += "  [";
          out += conns[in.a]->describe();
          out += "]";
          break;
        case Operands::Sleep:
          std::snprintf(buf, sizeof buf, "  scc=%u skip=%u", in.a, in.b);
          out += buf;
          break;
        case Operands::Scc:
          std::snprintf(buf, sizeof buf, "  scc=%u", in.a);
          out += buf;
          break;
        case Operands::Chain:
          std::snprintf(buf, sizeof buf, "  chain=%u ch=%u", in.a, in.b);
          out += buf;
          break;
        case Operands::None:
          break;
      }
      out += '\n';
    }
  };

  dump_tape("start", program_.start);
  dump_tape("resolve", program_.resolve);
  dump_tape("commit", program_.commit);
  return out;
}

}  // namespace liberty::gen
