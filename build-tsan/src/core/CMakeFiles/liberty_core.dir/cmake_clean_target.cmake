file(REMOVE_RECURSE
  "libliberty_core.a"
)
