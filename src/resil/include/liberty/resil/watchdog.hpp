// Watchdog: runtime invariant checking over a live simulation.
//
// The injector (injector.hpp) breaks the 3-signal contract on purpose; the
// watchdog is the matching detector.  It rides the kernel's observability
// seam (core::KernelProbe) and checks, inside the on_cycle_resolved window
// — every channel resolved, nothing committed yet — three invariant
// families:
//
//   protocol     on every *ungated AutoAccept* connection the kernel owns
//                the ack and drives ack := enable, so acked() != enabled()
//                is impossible in a healthy run.  (Managed connections are
//                exempt: a consumer may legitimately queue an ack before
//                the offer resolves, so ack-without-offer proves nothing
//                there — see docs/resilience.md.)
//   divergence   the cycle's completed transfers, hashed in connection-id
//                order, must match a recorded fault-free baseline.  This is
//                what catches data-plane faults (corrupt_data, drop_enable,
//                stuck_channel) that never violate the handshake protocol.
//   livelock     a wall-clock budget per cycle; a cycle that exceeds it is
//                reported (fixed-point *non-convergence* is the scheduler's
//                iteration cap throwing — classified via
//                note_kernel_error).
//
// Because on_cycle_resolved fires before any end_of_cycle handler commits
// state, a watchdog configured to throw aborts the cycle pre-commit: every
// earlier checkpoint still holds fault-free state, which is what makes
// rollback recovery (recovery.hpp) bit-exact.
//
// The watchdog is a *decorator*: set_next() chains another probe (e.g. the
// obs CycleProfiler, or a TraceRecorder) behind it, so observability and
// invariant checking compose on the kernel's single probe slot.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "liberty/core/probe.hpp"
#include "liberty/core/state.hpp"
#include "liberty/core/types.hpp"

namespace liberty::core {
class Connection;
class Netlist;
class Simulator;
}  // namespace liberty::core

namespace liberty::obs {
class MetricsRegistry;
}

namespace liberty::resil {

// --- Shared transfer-trace hashing -----------------------------------------
//
// One definition used everywhere a trace is compared: the watchdog baseline,
// the recovery supervisor's report, lss_run --digest, and test_resil.  Two
// runs have identical behaviour iff their per-cycle hashes match.

/// Fold one completed transfer (connection id + payload content) into a
/// running FNV-1a hash.
[[nodiscard]] std::uint64_t mix_transfer(std::uint64_t h,
                                         const core::Connection& c);

/// Hash every completed transfer of the current cycle in connection-id
/// order.  Valid only while channels are resolved (the on_cycle_resolved
/// window) — after commit the channels are reset.
[[nodiscard]] std::uint64_t hash_resolved_transfers(
    const core::Netlist& netlist);

/// Fold a per-cycle hash sequence into a single run digest.
[[nodiscard]] std::uint64_t fold_trace(
    const std::vector<std::uint64_t>& hashes);

// --- Probe chaining ---------------------------------------------------------

/// KernelProbe that forwards every callback to an optional next probe.
/// Watchdog and TraceRecorder derive from this so both can sit anywhere in
/// a probe chain on the kernel's single probe slot.
class ChainedProbe : public core::KernelProbe {
 public:
  void set_next(core::KernelProbe* next) noexcept { next_ = next; }
  [[nodiscard]] core::KernelProbe* next() const noexcept { return next_; }

  void on_cycle_begin(core::Cycle c) override {
    if (next_ != nullptr) next_->on_cycle_begin(c);
  }
  void on_cycle_end(core::Cycle c) override {
    if (next_ != nullptr) next_->on_cycle_end(c);
  }
  void on_cycle_resolved(core::Cycle c) override {
    if (next_ != nullptr) next_->on_cycle_resolved(c);
  }
  void on_phase(core::SchedPhase p, core::Cycle c, double s) override {
    if (next_ != nullptr) next_->on_phase(p, c, s);
  }
  void on_wave(core::Cycle c, std::size_t w, std::size_t n,
               double s) override {
    if (next_ != nullptr) next_->on_wave(c, w, n, s);
  }
  void on_lane(core::Cycle c, std::size_t w, unsigned lane,
               double busy) override {
    if (next_ != nullptr) next_->on_lane(c, w, lane, busy);
  }
  void on_module_batch(const std::uint64_t* reacts, const double* seconds,
                       std::size_t n) override {
    if (next_ != nullptr) next_->on_module_batch(reacts, seconds, n);
  }

 protected:
  core::KernelProbe* next_ = nullptr;
};

/// Probe that records one transfer hash per cycle (indexed by cycle, so a
/// replay after rollback overwrites the aborted attempt's entries).
class TraceRecorder final : public ChainedProbe {
 public:
  explicit TraceRecorder(const core::Netlist& netlist) : netlist_(&netlist) {}

  void on_cycle_resolved(core::Cycle cycle) override;

  [[nodiscard]] const std::vector<std::uint64_t>& hashes() const noexcept {
    return hashes_;
  }
  [[nodiscard]] std::vector<std::uint64_t> take() && {
    return std::move(hashes_);
  }
  /// Drop entries at cycle >= `cycle` (rollback truncation).
  void truncate(core::Cycle cycle);
  void clear() { hashes_.clear(); }
  /// Seed the per-cycle hash prefix from a durable checkpoint, so a
  /// resumed run reproduces the uninterrupted run's full trace digest.
  void preload(std::vector<std::uint64_t> prefix) {
    hashes_ = std::move(prefix);
  }

 private:
  const core::Netlist* netlist_;
  std::vector<std::uint64_t> hashes_;
};

// --- The watchdog -----------------------------------------------------------

struct WatchdogConfig {
  bool protocol_checks = true;   // ungated AutoAccept ack==enable invariant
  double cycle_wall_budget = 0.0;  // seconds per cycle; 0 disables livelock
  bool throw_on_violation = false;  // abort the cycle pre-commit (recovery)
  std::size_t max_diagnostics = 64;  // stored; further ones only counted
};

struct Diagnostic {
  enum class Kind : std::uint8_t {
    Protocol,        // 3-signal invariant broken on a kernel-owned ack
    Divergence,      // transfer trace departs from fault-free baseline
    NonConvergence,  // fixed point hit the scheduler's iteration cap
    HandlerFault,    // a module handler threw (injected or real)
    Livelock,        // cycle exceeded the wall-clock budget
    KernelError,     // any other kernel exception routed through us
  };
  static constexpr std::size_t kKindCount = 6;

  Kind kind = Kind::Protocol;
  core::Cycle cycle = 0;
  std::string module;      // blamed module instance ("" when unknown)
  std::string connection;  // blamed connection describe() ("" when n/a)
  std::string detail;

  [[nodiscard]] std::string format() const;
};

[[nodiscard]] std::string_view diagnostic_kind_name(
    Diagnostic::Kind kind) noexcept;

class Watchdog final : public ChainedProbe {
 public:
  explicit Watchdog(WatchdogConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const WatchdogConfig& config() const noexcept { return cfg_; }
  /// The recovery supervisor forces this on: rollback is only sound when
  /// detection aborts the cycle pre-commit.
  void set_throw_on_violation(bool v) noexcept {
    cfg_.throw_on_violation = v;
  }

  /// Bind to a simulator: cache which connections carry kernel-owned acks
  /// and install this probe (chain a previously installed probe yourself
  /// via set_next before attaching).  Re-attach after any netlist surgery
  /// (quarantine) so the cache is rebuilt.
  void attach(core::Simulator& sim);

  // Baseline management for the divergence check.  Record on a fault-free
  // run, then set the taken baseline on the run under test.  Memory is
  // O(cycles x connections) words — sized for validation runs.
  void record_baseline();
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> take_baseline();
  void set_baseline(std::vector<std::vector<std::uint64_t>> baseline);
  void clear_baseline();
  [[nodiscard]] bool has_baseline() const noexcept {
    return !recording_ && !baseline_.empty();
  }

  // ChainedProbe
  void on_cycle_begin(core::Cycle cycle) override;
  void on_cycle_resolved(core::Cycle cycle) override;
  void on_cycle_end(core::Cycle cycle) override;

  /// Classify a kernel exception (scheduler iteration cap, injected handler
  /// fault, anything else) into a diagnostic.  Call from the code that
  /// catches the error — the kernel cannot call back while unwinding.
  /// Messages produced by the watchdog itself are ignored (the diagnostic
  /// was already recorded before throwing).
  void note_kernel_error(const std::string& what, core::Cycle cycle);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  [[nodiscard]] std::uint64_t violation_count() const noexcept {
    return total_;
  }
  [[nodiscard]] std::uint64_t count(Diagnostic::Kind kind) const noexcept {
    return by_kind_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t cycles_checked() const noexcept {
    return cycles_checked_;
  }

  /// Export counters as resil.watchdog.* (see docs/resilience.md).
  void export_metrics(obs::MetricsRegistry& reg) const;

 private:
  void record(Diagnostic d);

  WatchdogConfig cfg_;
  const core::Netlist* netlist_ = nullptr;
  std::vector<std::size_t> kernel_acked_;  // ungated AutoAccept conn indexes

  bool recording_ = false;
  // baseline_[cycle][conn] = that connection's transfer hash (kFnv1aInit
  // when it did not transfer); per-conn granularity buys channel
  // attribution on divergence.
  std::vector<std::vector<std::uint64_t>> baseline_;

  std::vector<Diagnostic> diagnostics_;
  std::array<std::uint64_t, Diagnostic::kKindCount> by_kind_{};
  std::uint64_t total_ = 0;
  std::uint64_t cycles_checked_ = 0;
  std::chrono::steady_clock::time_point cycle_start_{};
  bool timing_ = false;
};

}  // namespace liberty::resil
