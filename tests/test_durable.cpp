// Durable checkpoints and crash recovery (docs/resilience.md, "Durable
// checkpoints"): the v1 on-disk format (roundtrip, torn-prefix and
// bit-flip rejection, payload codecs), the DurableSupervisor (atomic
// spill, retention, resume-with-skip, env-fault injection), the
// fork+SIGKILL harness proving a killed run resumes bit-identically for
// every scheduler at -O0 and -O2, the committed golden checkpoint every
// future build must load, and the stable resil.supervisor.* /
// gen.native.cache.* metric names.
#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "liberty/ccl/ccl.hpp"
#include "liberty/ccl/flit.hpp"
#include "liberty/core/checkpoint.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/gen/compiled_scheduler.hpp"
#include "liberty/gen/native.hpp"
#include "liberty/mpl/mpl.hpp"
#include "liberty/obs/metrics.hpp"
#include "liberty/opt/optimizer.hpp"
#include "liberty/pcl/payloads.hpp"
#include "liberty/resil/durable.hpp"
#include "liberty/resil/fault_plan.hpp"
#include "liberty/resil/injector.hpp"
#include "liberty/resil/recovery.hpp"
#include "liberty/resil/watchdog.hpp"
#include "liberty/support/error.hpp"
#include "liberty/testing/netspec.hpp"
#include "test_util.hpp"

#ifndef LIBERTY_REPO_ROOT
#error "LIBERTY_REPO_ROOT must point at the repository checkout"
#endif

namespace {

namespace fs = std::filesystem;

using liberty::Value;
using liberty::core::ByteReader;
using liberty::core::ByteWriter;
using liberty::core::CheckpointImage;
using liberty::core::Cycle;
using liberty::core::Netlist;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using liberty::resil::CheckpointCandidate;
using liberty::resil::DurableConfig;
using liberty::resil::DurableSupervisor;
using liberty::resil::FaultClass;
using liberty::resil::FaultInjector;
using liberty::resil::FaultPlan;
using liberty::resil::FaultSpec;
using liberty::resil::RecoveryPolicy;
using liberty::resil::RecoveryReport;
using liberty::resil::SupervisorConfig;
using liberty::test::params;
using liberty::testing::NetSpec;

/// Registry carrying every library whose payload codecs the tests
/// exercise (registration rides the register_*() entry points).
liberty::core::ModuleRegistry& reg() {
  static liberty::core::ModuleRegistry r = [] {
    liberty::core::ModuleRegistry m;
    liberty::pcl::register_pcl(m);
    liberty::ccl::register_ccl(m);
    liberty::mpl::register_mpl(m);
    return m;
  }();
  return r;
}

/// The canonical durable workload: a deterministic counter chain plus a
/// seeded stochastic stamped chain, so checkpoints carry plain slots,
/// Stamped payloads, and live Rng state.
NetSpec durable_spec() {
  NetSpec spec;
  spec.modules.push_back({"pcl.source", "src",
                          params({{"kind", Value(std::string("counter"))},
                                  {"period", Value(std::int64_t{1})}})});
  spec.modules.push_back(
      {"pcl.queue", "q", params({{"depth", Value(std::int64_t{4})}})});
  spec.modules.push_back(
      {"pcl.delay", "d", params({{"latency", Value(std::int64_t{2})}})});
  spec.modules.push_back({"pcl.sink", "snk", {}});
  spec.edges.push_back({0, "out", 1, "in"});
  spec.edges.push_back({1, "out", 2, "in"});
  spec.edges.push_back({2, "out", 3, "in"});
  spec.modules.push_back({"pcl.source", "r0",
                          params({{"kind", Value(std::string("random"))},
                                  {"period", Value(std::int64_t{0})},
                                  {"rate", Value(0.5)},
                                  {"seed", Value(std::int64_t{7})},
                                  {"stamp", Value(true)}})});
  spec.modules.push_back(
      {"pcl.queue", "r1", params({{"depth", Value(std::int64_t{3})}})});
  spec.modules.push_back({"pcl.sink", "r2", {}});
  spec.edges.push_back({4, "out", 5, "in"});
  spec.edges.push_back({5, "out", 6, "in"});
  return spec;
}

void build_netlist(Netlist& nl, const NetSpec& spec, int opt_level) {
  spec.build(nl, reg());
  if (opt_level > 0) {
    liberty::opt::optimize(nl,
                           liberty::opt::OptOptions::for_level(opt_level));
  }
}

SupervisorConfig sup_cfg(SchedulerKind kind, unsigned threads,
                         Cycle checkpoint_every) {
  SupervisorConfig scfg;
  scfg.scheduler = kind;
  scfg.threads = threads;
  scfg.checkpoint_every = checkpoint_every;
  scfg.policy = RecoveryPolicy::Abort;
  return scfg;
}

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/liberty-durable-XXXXXX";
    if (::mkdtemp(tmpl) != nullptr) path = tmpl;
  }
  ~TempDir() {
    if (!path.empty()) {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  }
  std::string path;
};

std::uint64_t value_digest(const Value& v) {
  return liberty::core::digest_value(liberty::core::kFnv1aInit, v);
}

Value roundtrip(const Value& v) {
  ByteWriter w;
  liberty::core::encode_value(w, v);
  ByteReader r(w.bytes());
  return liberty::core::decode_value(r);
}

// ---------------------------------------------------------------------------
// Byte-level substrate.

TEST(Checkpoint, Crc32KnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(liberty::core::crc32_bytes("123456789", 9), 0xCBF43926u);
  // Chaining equals one-shot.
  const std::uint32_t head = liberty::core::crc32_bytes("1234", 4);
  EXPECT_EQ(liberty::core::crc32_bytes("56789", 5, head), 0xCBF43926u);
}

TEST(Checkpoint, ReaderUnderflowThrowsNeverMisparses) {
  ByteWriter w;
  w.put_u32(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u32(), 7u);
  EXPECT_THROW((void)r.get_u64(), liberty::Error);
}

TEST(Checkpoint, ValueRoundtripScalars) {
  for (const Value& v :
       {Value(), Value(true), Value(false), Value(std::int64_t{-42}),
        Value(3.25), Value(std::string("hello\0world", 11))}) {
    EXPECT_EQ(value_digest(roundtrip(v)), value_digest(v));
  }
}

TEST(Checkpoint, ValueRoundtripRecursivePayloads) {
  reg();  // force codec registration
  // A Flit whose body is a Stamped wrapping an integer: two codec layers
  // plus a scalar, exercising the recursive encode path end to end.
  auto stamped = std::make_shared<liberty::pcl::Stamped>(
      Value(std::int64_t{99}), 17);
  auto flit = std::make_shared<liberty::ccl::Flit>(
      5, 1, 2, 30, 1, true, false,
      Value(std::shared_ptr<const liberty::Payload>(stamped)));
  flit->hops = 3;
  const Value v{std::shared_ptr<const liberty::Payload>(flit)};
  const Value back = roundtrip(v);
  EXPECT_EQ(value_digest(back), value_digest(v));
  const auto* f = dynamic_cast<const liberty::ccl::Flit*>(
      std::get<std::shared_ptr<const liberty::Payload>>(back.raw()).get());
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->packet, 5u);
  EXPECT_EQ(f->hops, 3u);
  EXPECT_FALSE(f->tail);
}

TEST(Checkpoint, UnregisteredPayloadRefusesToEncode) {
  struct NoCodec final : liberty::Payload {
    [[nodiscard]] std::string describe() const override { return "nocodec"; }
  };
  ByteWriter w;
  EXPECT_THROW(liberty::core::encode_value(
                   w, Value(std::shared_ptr<const liberty::Payload>(
                          std::make_shared<NoCodec>()))),
               liberty::Error);
}

// ---------------------------------------------------------------------------
// Container format.

CheckpointImage image_after(Cycle cycles) {
  Netlist nl;
  build_netlist(nl, durable_spec(), 0);
  Simulator sim(nl, SchedulerKind::Static, 0);
  liberty::resil::TraceRecorder rec(nl);
  sim.set_probe(&rec);
  sim.run(cycles);
  CheckpointImage img;
  img.topology_hash = nl.topology_hash();
  img.aux_seed = 0xabcd;
  img.snapshot = sim.snapshot();
  img.trace_hashes = rec.hashes();
  return img;
}

TEST(Checkpoint, ContainerRoundtrip) {
  const CheckpointImage img = image_after(60);
  const std::string bytes = liberty::core::serialize_checkpoint(img);
  CheckpointImage back;
  std::string why;
  ASSERT_TRUE(liberty::core::parse_checkpoint(bytes, back, why)) << why;
  EXPECT_EQ(back.topology_hash, img.topology_hash);
  EXPECT_EQ(back.aux_seed, 0xabcdu);
  EXPECT_EQ(back.snapshot.cycle, img.snapshot.cycle);
  EXPECT_EQ(back.snapshot.stop_requested, img.snapshot.stop_requested);
  EXPECT_EQ(back.snapshot.digest(), img.snapshot.digest());
  EXPECT_EQ(back.trace_hashes, img.trace_hashes);
}

TEST(Checkpoint, EveryTruncationPrefixIsRejected) {
  const std::string bytes =
      liberty::core::serialize_checkpoint(image_after(20));
  CheckpointImage out;
  std::string why;
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(liberty::core::parse_checkpoint(
        std::string_view(bytes.data(), n), out, why))
        << "prefix of " << n << "/" << bytes.size()
        << " bytes parsed as valid";
  }
  ASSERT_TRUE(liberty::core::parse_checkpoint(bytes, out, why)) << why;
}

TEST(Checkpoint, BitFlipsAreRejected) {
  const std::string bytes =
      liberty::core::serialize_checkpoint(image_after(20));
  CheckpointImage out;
  std::string why;
  // Flip one bit in every 7th byte (covers prelude, body, and CRC).
  for (std::size_t at = 0; at < bytes.size(); at += 7) {
    std::string mutated = bytes;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x10);
    EXPECT_FALSE(liberty::core::parse_checkpoint(mutated, out, why))
        << "bit flip at byte " << at << " went undetected";
  }
}

TEST(Checkpoint, TopologyHashIsStructuralAndStable) {
  Netlist a;
  build_netlist(a, durable_spec(), 0);
  Netlist b;
  build_netlist(b, durable_spec(), 0);
  EXPECT_EQ(a.topology_hash(), b.topology_hash());
  NetSpec other = durable_spec();
  other.modules.push_back({"pcl.sink", "extra", {}});
  Netlist c;
  build_netlist(c, other, 0);
  EXPECT_NE(a.topology_hash(), c.topology_hash());
}

// ---------------------------------------------------------------------------
// DurableSupervisor: spill, retention, resume.

TEST(Durable, WritesAtomicallyAndPrunesToKeepLast) {
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  Netlist nl;
  build_netlist(nl, durable_spec(), 2);
  DurableConfig dcfg;
  dcfg.dir = dir.path;
  dcfg.keep_last = 2;
  DurableSupervisor sup(nl, sup_cfg(SchedulerKind::Static, 0, 10), dcfg);
  const RecoveryReport rep = sup.run(100);
  ASSERT_TRUE(rep.completed) << rep.summary();
  EXPECT_GE(sup.stats().checkpoints_written, 10u);
  EXPECT_GT(sup.stats().bytes_written, 0u);

  const auto list =
      liberty::resil::scan_checkpoints(dir.path, nl.topology_hash());
  ASSERT_EQ(list.size(), 2u);  // retention pruned everything older
  EXPECT_EQ(list[0].cycle, 100u);  // newest first
  EXPECT_EQ(list[1].cycle, 90u);
  EXPECT_TRUE(list[0].valid) << list[0].reason;
  EXPECT_TRUE(list[1].valid) << list[1].reason;
  // No temp droppings survive the atomic publish discipline.
  for (const auto& e : fs::directory_iterator(dir.path)) {
    EXPECT_EQ(e.path().extension(), ".lck") << e.path();
  }
}

/// Run the workload under a DurableSupervisor; returns (trace, state).
std::pair<std::uint64_t, std::uint64_t> durable_run(const std::string& dir,
                                                    SchedulerKind kind,
                                                    unsigned threads,
                                                    int opt_level, Cycle cycles,
                                                    bool resume) {
  Netlist nl;
  build_netlist(nl, durable_spec(), opt_level);
  DurableConfig dcfg;
  dcfg.dir = dir;
  dcfg.keep_last = 8;
  dcfg.resume = resume;
  DurableSupervisor sup(nl, sup_cfg(kind, threads, 20), dcfg);
  const RecoveryReport rep = sup.run(cycles);
  EXPECT_TRUE(rep.completed) << rep.summary();
  return {rep.trace_digest(), rep.state_digest};
}

TEST(Durable, ResumeReproducesTheUninterruptedDigest) {
  TempDir full_dir;
  const auto full = durable_run(full_dir.path, SchedulerKind::Static, 0, 0,
                                240, false);

  TempDir dir;
  // Phase 1: run only part way (last spill lands at cycle 100).
  durable_run(dir.path, SchedulerKind::Static, 0, 0, 117, false);
  // Phase 2: a fresh process image resumes and finishes the run.
  const auto resumed =
      durable_run(dir.path, SchedulerKind::Static, 0, 0, 240, true);
  EXPECT_EQ(resumed.first, full.first) << "trace digest diverged";
  EXPECT_EQ(resumed.second, full.second) << "state digest diverged";
}

TEST(Durable, ResumeSkipsCorruptNewestWithDiagnostic) {
  TempDir full_dir;
  const auto full = durable_run(full_dir.path, SchedulerKind::Static, 0, 2,
                                200, false);

  TempDir dir;
  durable_run(dir.path, SchedulerKind::Static, 0, 2, 130, false);
  // Corrupt the newest file (cycle 120) and truncate the one before it.
  {
    std::fstream f(dir.path + "/ckpt-000000000120.lck",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(40);
    f.put('\x5a');
  }
  fs::resize_file(dir.path + "/ckpt-000000000100.lck", 13);

  Netlist nl;
  build_netlist(nl, durable_spec(), 2);
  DurableConfig dcfg;
  dcfg.dir = dir.path;
  dcfg.keep_last = 8;
  dcfg.resume = true;
  DurableSupervisor sup(nl, sup_cfg(SchedulerKind::Static, 0, 20), dcfg);
  const RecoveryReport rep = sup.run(200);
  ASSERT_TRUE(rep.completed) << rep.summary();
  EXPECT_EQ(sup.stats().corrupt_skipped, 2u);
  EXPECT_EQ(sup.resumed_from(), 80u);
  EXPECT_EQ(rep.trace_digest(), full.first);
  EXPECT_EQ(rep.state_digest, full.second);
  bool saw_skip = false;
  for (const auto& d : sup.diagnostics()) {
    if (d.find("skipped") != std::string::npos) saw_skip = true;
  }
  EXPECT_TRUE(saw_skip);
}

TEST(Durable, ResumeFromEmptyDirectoryStartsFresh) {
  TempDir dir;
  Netlist nl;
  build_netlist(nl, durable_spec(), 0);
  DurableConfig dcfg;
  dcfg.dir = dir.path;
  dcfg.resume = true;
  DurableSupervisor sup(nl, sup_cfg(SchedulerKind::Static, 0, 50), dcfg);
  const RecoveryReport rep = sup.run(60);
  ASSERT_TRUE(rep.completed) << rep.summary();
  EXPECT_EQ(sup.resumed_from(), 0u);
  EXPECT_EQ(sup.stats().resumes, 0u);
  bool saw_fresh = false;
  for (const auto& d : sup.diagnostics()) {
    if (d.find("starting fresh") != std::string::npos) saw_fresh = true;
  }
  EXPECT_TRUE(saw_fresh);
}

TEST(Durable, DescribeCandidatesIsTheSharedMessagePath) {
  // Missing directory.
  const auto none = liberty::resil::scan_checkpoints("/nonexistent/nope", 0);
  EXPECT_TRUE(none.empty());
  EXPECT_NE(liberty::resil::describe_candidates("/nonexistent/nope", none)
                .find("does not exist"),
            std::string::npos);

  // A directory holding one good and one torn file.
  TempDir dir;
  Netlist nl;
  build_netlist(nl, durable_spec(), 0);
  DurableConfig dcfg;
  dcfg.dir = dir.path;
  DurableSupervisor sup(nl, sup_cfg(SchedulerKind::Static, 0, 30), dcfg);
  ASSERT_TRUE(sup.run(60).completed);
  fs::resize_file(dir.path + "/ckpt-000000000060.lck", 21);
  const auto list =
      liberty::resil::scan_checkpoints(dir.path, nl.topology_hash());
  const std::string text =
      liberty::resil::describe_candidates(dir.path, list);
  EXPECT_NE(text.find("ckpt-000000000060.lck"), std::string::npos) << text;
  EXPECT_NE(text.find("REJECTED"), std::string::npos) << text;
  EXPECT_NE(text.find("torn write"), std::string::npos) << text;
  EXPECT_NE(text.find("ok"), std::string::npos) << text;
}

TEST(Durable, TopologyMismatchIsRejectedNotLoaded) {
  TempDir dir;
  Netlist nl;
  build_netlist(nl, durable_spec(), 0);
  DurableConfig dcfg;
  dcfg.dir = dir.path;
  DurableSupervisor sup(nl, sup_cfg(SchedulerKind::Static, 0, 30), dcfg);
  ASSERT_TRUE(sup.run(60).completed);

  NetSpec other = durable_spec();
  other.modules.push_back({"pcl.sink", "extra", {}});
  Netlist changed;
  build_netlist(changed, other, 0);
  const auto list =
      liberty::resil::scan_checkpoints(dir.path, changed.topology_hash());
  ASSERT_FALSE(list.empty());
  for (const auto& c : list) {
    EXPECT_FALSE(c.valid);
    EXPECT_NE(c.reason.find("topology mismatch"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Environment fault classes: torn writes and ENOSPC on the spill path.

TEST(Durable, InjectedTornWritesAreSkippedOnResume) {
  TempDir full_dir;
  const auto full = durable_run(full_dir.path, SchedulerKind::Static, 0, 0,
                                200, false);

  TempDir dir;
  {
    Netlist nl;
  build_netlist(nl, durable_spec(), 0);
    FaultPlan plan;
    plan.seed = 0x7e;
    FaultSpec f;
    f.cls = FaultClass::TornCheckpoint;
    f.from_cycle = 40;
    plan.faults.push_back(f);
    FaultInjector inj(plan);
    DurableConfig dcfg;
    dcfg.dir = dir.path;
    dcfg.keep_last = 16;
    DurableSupervisor sup(nl, sup_cfg(SchedulerKind::Static, 0, 20), dcfg,
                          &inj);
    ASSERT_TRUE(sup.run(100).completed);
    // Every spill from the onset is torn, deterministically.
    EXPECT_GE(inj.sites().size(), 1u);
  }
  // Resume: skips the torn tail, lands on the last pre-onset file.
  Netlist nl;
  build_netlist(nl, durable_spec(), 0);
  DurableConfig dcfg;
  dcfg.dir = dir.path;
  dcfg.keep_last = 16;
  dcfg.resume = true;
  DurableSupervisor sup(nl, sup_cfg(SchedulerKind::Static, 0, 20), dcfg);
  const RecoveryReport rep = sup.run(200);
  ASSERT_TRUE(rep.completed) << rep.summary();
  EXPECT_GE(sup.stats().corrupt_skipped, 3u);
  EXPECT_EQ(sup.resumed_from(), 20u);
  EXPECT_EQ(rep.trace_digest(), full.first);
  EXPECT_EQ(rep.state_digest, full.second);
}

TEST(Durable, InjectedEnospcDegradesToUndurableNotAnError) {
  TempDir dir;
  Netlist nl;
  build_netlist(nl, durable_spec(), 0);
  FaultPlan plan;
  plan.seed = 0x7e;
  FaultSpec f;
  f.cls = FaultClass::CheckpointEnospc;
  f.from_cycle = 0;
  plan.faults.push_back(f);
  FaultInjector inj(plan);
  DurableConfig dcfg;
  dcfg.dir = dir.path;
  DurableSupervisor sup(nl, sup_cfg(SchedulerKind::Static, 0, 20), dcfg,
                        &inj);
  const RecoveryReport rep = sup.run(100);
  ASSERT_TRUE(rep.completed) << rep.summary();  // the run itself succeeds
  EXPECT_EQ(sup.stats().checkpoints_written, 0u);
  EXPECT_GE(sup.stats().write_failures, 1u);
  EXPECT_TRUE(fs::is_empty(dir.path));
  bool saw = false;
  for (const auto& d : sup.diagnostics()) {
    if (d.find("ENOSPC") != std::string::npos) saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(Durable, EnvFaultClassNamesRoundtripThroughJson) {
  FaultPlan plan;
  plan.seed = 9;
  for (const FaultClass cls :
       {FaultClass::TornCheckpoint, FaultClass::CheckpointEnospc}) {
    FaultSpec f;
    f.cls = cls;
    f.from_cycle = 5;
    plan.faults.push_back(f);
  }
  const FaultPlan back = FaultPlan::from_json(plan.to_json());
  ASSERT_EQ(back.faults.size(), 2u);
  EXPECT_EQ(back.faults[0].cls, FaultClass::TornCheckpoint);
  EXPECT_EQ(back.faults[1].cls, FaultClass::CheckpointEnospc);
}

// ---------------------------------------------------------------------------
// The crash harness: fork, SIGKILL mid-run, resume, compare digests — for
// every scheduler at -O0 and -O2.

void kill_midrun(const std::string& dir, SchedulerKind kind, unsigned threads,
                 int opt_level, Cycle kill_at, Cycle cycles) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: the supervisor raises SIGKILL once `kill_at` commits.  Any
    // other exit is a harness failure the parent will flag.
    Netlist nl;
  build_netlist(nl, durable_spec(), opt_level);
    DurableConfig dcfg;
    dcfg.dir = dir;
    dcfg.keep_last = 8;
    dcfg.kill_at = kill_at;
    DurableSupervisor sup(nl, sup_cfg(kind, threads, 20), dcfg);
    (void)sup.run(cycles);
    ::_exit(42);  // reached only if kill_at never fired
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child was not SIGKILLed (status " << status << ")";
}

TEST(DurableCrash, KilledRunResumesBitIdenticalAcrossSchedulers) {
  struct Case {
    SchedulerKind kind;
    unsigned threads;
  };
  std::vector<Case> cases = {{SchedulerKind::Dynamic, 0},
                             {SchedulerKind::Static, 0},
                             {SchedulerKind::Parallel, 2},
                             {SchedulerKind::Compiled, 0}};
  liberty::gen::ensure_registered();
  if (liberty::gen::native_available()) {
    cases.push_back({SchedulerKind::Native, 0});
  }
  constexpr Cycle kCycles = 160;
  constexpr Cycle kKillAt = 90;
  for (const int opt_level : {0, 2}) {
    TempDir ref_dir;
    const auto full = durable_run(ref_dir.path, SchedulerKind::Static, 0,
                                  opt_level, kCycles, false);
    for (const Case& c : cases) {
      TempDir dir;
      kill_midrun(dir.path, c.kind, c.threads, opt_level, kKillAt, kCycles);
      const auto resumed =
          durable_run(dir.path, c.kind, c.threads, opt_level, kCycles, true);
      EXPECT_EQ(resumed.first, full.first)
          << "trace digest, scheduler " << static_cast<int>(c.kind) << " -O"
          << opt_level;
      EXPECT_EQ(resumed.second, full.second)
          << "state digest, scheduler " << static_cast<int>(c.kind) << " -O"
          << opt_level;
    }
  }
}

// ---------------------------------------------------------------------------
// Golden checkpoint: a file this build (and every future build) must load.

bool updating_golden() {
  const char* env = std::getenv("LIBERTY_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

TEST(DurableGolden, CommittedCheckpointLoadsForever) {
  const std::string path =
      std::string(LIBERTY_REPO_ROOT) + "/tests/golden/checkpoint_v1.lck";
  constexpr Cycle kHalf = 60;
  constexpr Cycle kFull = 120;

  if (updating_golden()) {
    const CheckpointImage img = image_after(kHalf);
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << liberty::core::serialize_checkpoint(img);
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << path << " is missing; regenerate with LIBERTY_UPDATE_GOLDEN=1";
  std::ostringstream bytes;
  bytes << in.rdbuf();
  CheckpointImage img;
  std::string why;
  ASSERT_TRUE(liberty::core::parse_checkpoint(bytes.str(), img, why))
      << "golden checkpoint no longer parses: " << why
      << " — the on-disk format broke compatibility; bump "
         "kCheckpointVersion and keep the v1 parser";

  // It belongs to today's canonical netlist shape...
  Netlist nl;
  build_netlist(nl, durable_spec(), 0);
  ASSERT_EQ(img.topology_hash, nl.topology_hash())
      << "topology hash drifted — golden checkpoints from older builds "
         "would all be rejected";
  ASSERT_EQ(img.snapshot.cycle, kHalf);

  // ...and a run resumed from it is bit-identical to an uninterrupted one.
  Simulator sim(nl, SchedulerKind::Static, 0);
  liberty::resil::TraceRecorder rec(nl);
  sim.set_probe(&rec);
  sim.restore(img.snapshot);
  rec.preload(img.trace_hashes);
  sim.run(kFull - kHalf);

  Netlist ref;
  build_netlist(ref, durable_spec(), 0);
  Simulator ref_sim(ref, SchedulerKind::Static, 0);
  liberty::resil::TraceRecorder ref_rec(ref);
  ref_sim.set_probe(&ref_rec);
  ref_sim.run(kFull);
  EXPECT_EQ(liberty::resil::fold_trace(rec.hashes()),
            liberty::resil::fold_trace(ref_rec.hashes()));
  EXPECT_EQ(sim.snapshot().digest(), ref_sim.snapshot().digest());
}

// ---------------------------------------------------------------------------
// Stable metric names.

TEST(DurableMetrics, StableCounterNames) {
  TempDir dir;
  Netlist nl;
  build_netlist(nl, durable_spec(), 0);
  DurableConfig dcfg;
  dcfg.dir = dir.path;
  DurableSupervisor sup(nl, sup_cfg(SchedulerKind::Static, 0, 20), dcfg);
  ASSERT_TRUE(sup.run(60).completed);

  liberty::obs::MetricsRegistry m;
  sup.export_metrics(m);
  liberty::gen::export_native_metrics(m);
  for (const char* name :
       {"resil.supervisor.checkpoints_written",
        "resil.supervisor.checkpoint_bytes", "resil.supervisor.resumes",
        "resil.supervisor.corrupt_skipped",
        "resil.supervisor.write_failures", "gen.native.cache.hits",
        "gen.native.cache.quarantined", "gen.native.cache.compile_retries",
        "gen.native.cache.compile_timeouts", "gen.native.cache.compiles"}) {
    EXPECT_EQ(m.counters().count(name), 1u) << "missing counter " << name;
  }
  EXPECT_GE(m.counters().at("resil.supervisor.checkpoints_written"), 3u);
}

}  // namespace
