#include "liberty/obs/metrics.hpp"

#include <cstdio>
#include <string>

#include "liberty/obs/json.hpp"
#include "liberty/obs/profiler.hpp"

namespace liberty::obs {

std::string current_git_rev() {
  FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {};
  std::string rev;
  if (std::fgets(buf, sizeof buf, pipe) != nullptr) rev = buf;
  const int status = ::pclose(pipe);
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  if (status != 0 || rev.empty()) return "unknown";
  return rev;
}

void MetricsRegistry::collect_modules(const liberty::core::Netlist& netlist) {
  for (const auto& mod : netlist.modules()) {
    const std::string base = "module." + mod->name() + '.';
    const liberty::StatSet& stats = mod->stats();
    for (const auto& [name, c] : stats.counters()) {
      add_counter(base + name, c.value());
    }
    for (const auto& [name, a] : stats.accumulators()) {
      Summary s;
      s.count = a.count();
      s.mean = a.mean();
      s.min = a.min();
      s.max = a.max();
      add_summary(base + name, s);
    }
    for (const auto& [name, h] : stats.histograms()) {
      const liberty::Accumulator& a = h.summary();
      Summary s;
      s.count = a.count();
      s.mean = a.mean();
      s.min = a.min();
      s.max = a.max();
      s.has_quantiles = true;
      s.p50 = h.quantile(0.5);
      s.p95 = h.quantile(0.95);
      s.p99 = h.quantile(0.99);
      add_summary(base + name, s);
    }
  }
}

void MetricsRegistry::collect_scheduler(
    const liberty::core::SchedulerBase& sched) {
  sched.visit_counters([this](std::string_view name, std::uint64_t value) {
    add_counter("scheduler." + std::string(name), value);
  });
}

void MetricsRegistry::collect_profile(const CycleProfiler& prof,
                                      const liberty::core::Netlist* netlist) {
  add_counter("profile.cycles", prof.cycles());
  add_scalar("profile.total_seconds", prof.total_seconds());
  for (std::size_t i = 0; i < liberty::core::kSchedPhaseCount; ++i) {
    const auto phase = static_cast<liberty::core::SchedPhase>(i);
    const std::string base =
        "profile.phase." + std::string(liberty::core::phase_name(phase));
    add_scalar(base + ".seconds", prof.phases()[i].seconds);
    add_counter(base + ".count", prof.phases()[i].count);
  }

  const auto& reacts = prof.module_reacts();
  const auto& seconds = prof.module_seconds();
  for (std::size_t id = 0; id < reacts.size(); ++id) {
    if (reacts[id] == 0 && seconds[id] == 0.0) continue;
    std::string who;
    if (netlist != nullptr && id < netlist->modules().size()) {
      who = netlist->modules()[id]->name();
    } else {
      who = "id" + std::to_string(id);
    }
    const std::string base = "profile.module." + who;
    add_counter(base + ".reacts", reacts[id]);
    add_scalar(base + ".react_seconds", seconds[id]);
  }

  if (prof.waves() > 0) {
    add_counter("profile.waves", prof.waves());
    add_counter("profile.wave_clusters", prof.wave_clusters());
    add_scalar("profile.wave_seconds", prof.wave_seconds());
    add_scalar("profile.lane_idle_seconds", prof.lane_idle_seconds());
    for (std::size_t lane = 0; lane < prof.lanes().size(); ++lane) {
      const std::string base = "profile.lane." + std::to_string(lane);
      add_scalar(base + ".busy_seconds", prof.lanes()[lane].busy_seconds);
      add_counter(base + ".waves", prof.lanes()[lane].waves);
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os, const RunMeta& meta) const {
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", kMetricsSchemaName);
  w.field("schema_version", static_cast<std::uint64_t>(kMetricsSchemaVersion));
  w.begin_object("meta");
  w.field("tool", meta.tool);
  w.field("spec", meta.spec);
  w.field("scheduler", meta.scheduler);
  w.field("threads", meta.threads);
  w.field("seed", meta.seed);
  w.field("cycles", meta.cycles);
  w.field("git_rev", meta.git_rev);
  w.end_object();
  w.begin_object("counters");
  for (const auto& [name, v] : counters_) w.field(name.c_str(), v);
  w.end_object();
  w.begin_object("scalars");
  for (const auto& [name, v] : scalars_) w.field(name.c_str(), v);
  w.end_object();
  w.begin_object("summaries");
  for (const auto& [name, s] : summaries_) {
    w.begin_object(name.c_str());
    w.field("count", s.count);
    w.field("mean", s.mean);
    w.field("min", s.min);
    w.field("max", s.max);
    if (s.has_quantiles) {
      w.field("p50", s.p50);
      w.field("p95", s.p95);
      w.field("p99", s.p99);
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

namespace {

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void csv_row(std::ostream& os, const char* section, const std::string& name,
             const char* field, const std::string& value) {
  os << section << ',' << csv_quote(name) << ',' << field << ','
     << csv_quote(value) << '\n';
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

void MetricsRegistry::write_csv(std::ostream& os, const RunMeta& meta) const {
  os << "section,name,field,value\n";
  csv_row(os, "meta", "schema", "value", kMetricsSchemaName);
  csv_row(os, "meta", "schema_version", "value",
          std::to_string(kMetricsSchemaVersion));
  csv_row(os, "meta", "tool", "value", meta.tool);
  csv_row(os, "meta", "spec", "value", meta.spec);
  csv_row(os, "meta", "scheduler", "value", meta.scheduler);
  csv_row(os, "meta", "threads", "value", std::to_string(meta.threads));
  csv_row(os, "meta", "seed", "value", std::to_string(meta.seed));
  csv_row(os, "meta", "cycles", "value", std::to_string(meta.cycles));
  csv_row(os, "meta", "git_rev", "value", meta.git_rev);
  for (const auto& [name, v] : counters_) {
    csv_row(os, "counter", name, "value", std::to_string(v));
  }
  for (const auto& [name, v] : scalars_) {
    csv_row(os, "scalar", name, "value", fmt_double(v));
  }
  for (const auto& [name, s] : summaries_) {
    csv_row(os, "summary", name, "count", std::to_string(s.count));
    csv_row(os, "summary", name, "mean", fmt_double(s.mean));
    csv_row(os, "summary", name, "min", fmt_double(s.min));
    csv_row(os, "summary", name, "max", fmt_double(s.max));
    if (s.has_quantiles) {
      csv_row(os, "summary", name, "p50", fmt_double(s.p50));
      csv_row(os, "summary", name, "p95", fmt_double(s.p95));
      csv_row(os, "summary", name, "p99", fmt_double(s.p99));
    }
  }
}

}  // namespace liberty::obs
