// Lexer for the Liberty Simulator Specification (LSS) language.
//
// The reproduction dialect (documented in README.md, "The LSS language")
// covers what the paper requires of the specification language: instancing
// customized module templates, port interconnection, hierarchical module
// definition with parameter/port forwarding, and "powerful syntax" for
// generative description (loops, conditionals, expressions).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace liberty::core::lss {

enum class Tok : std::uint8_t {
  End,
  Ident,
  Int,
  Real,
  String,
  // keywords
  KwParam,
  KwModule,
  KwInstance,
  KwConnect,
  KwFor,
  KwIn,
  KwIf,
  KwElse,
  KwInport,
  KwOutport,
  KwExport,
  KwAs,
  KwTrue,
  KwFalse,
  // punctuation / operators
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  LParen,
  RParen,
  Semi,
  Colon,
  Comma,
  Dot,
  DotDot,
  Arrow,    // ->
  Assign,   // =
  Eq,       // ==
  Ne,       // !=
  Le,       // <=
  Ge,       // >=
  Lt,       // <
  Gt,       // >
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Not,      // !
  AndAnd,   // &&
  OrOr,     // ||
  Question, // ?
};

[[nodiscard]] std::string_view tok_name(Tok t);

struct Token {
  Tok kind = Tok::End;
  std::string text;        // identifier / string contents
  std::int64_t int_val = 0;
  double real_val = 0.0;
  int line = 1;
  int col = 1;
};

/// Tokenize `source`.  `filename` is used only for error messages.
/// Throws SpecError on malformed input.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source,
                                          const std::string& filename);

}  // namespace liberty::core::lss
