// Simulator: drives a finalized netlist cycle by cycle.
//
// This is the "Simulator Executable" of the paper's Figure 1 — except that
// where the original LSE emitted C source and compiled it, we construct the
// executable simulator in-process from the elaborated netlist (see
// DESIGN.md, "Substitutions").
#pragma once

#include <memory>
#include <ostream>
#include <string_view>
#include <vector>

#include "liberty/core/netlist.hpp"
#include "liberty/core/scheduler.hpp"
#include "liberty/core/state.hpp"
#include "liberty/core/types.hpp"

namespace liberty::core {

enum class SchedulerKind { Dynamic, Static, Parallel, Compiled, Native };

/// A between-cycles image of one simulator: the cycle counter, the stop
/// flag, and every module's save_state slots.  Snapshots are cheap (values
/// share immutable payloads by pointer) and belong to the netlist shape
/// they were taken from — restoring into a different netlist is an error.
struct KernelSnapshot {
  Cycle cycle = 0;
  bool stop_requested = false;
  std::vector<std::vector<Value>> module_state;  // indexed by ModuleId

  /// Combined content digest of all module states (oracle comparisons).
  [[nodiscard]] std::uint64_t digest() const {
    std::uint64_t h = kFnv1aInit;
    for (const auto& slots : module_state) {
      h = fnv1a_mix(h, digest_slots(slots));
    }
    return h;
  }
};

/// Parse a scheduler name ("dyn"/"dynamic", "static", "par"/"parallel",
/// "compiled", "native"); throws ElaborationError naming the valid
/// spellings on anything else.  Shared by lss_run, bench_util and any
/// other front end exposing the scheduler knob.
[[nodiscard]] SchedulerKind scheduler_kind_from_name(std::string_view name);

/// Factory seams for SchedulerKind::Compiled and SchedulerKind::Native:
/// the core library cannot depend on liberty_gen (gen depends on the
/// component libraries, which depend on core), so the gen library
/// registers its scheduler constructors here and Simulator looks them up.
/// Front ends that want either backend link liberty_gen and call
/// liberty::gen::ensure_registered() before constructing simulators.  The
/// native factory is registered only when the build carries
/// LIBERTY_NATIVE_CODEGEN; SchedulerKind::Native with no native factory
/// degrades to the compiled factory with a one-time stderr notice.
using CompiledSchedulerFactory =
    std::unique_ptr<SchedulerBase> (*)(Netlist& netlist);
void set_compiled_scheduler_factory(CompiledSchedulerFactory factory);
[[nodiscard]] CompiledSchedulerFactory compiled_scheduler_factory();
using NativeSchedulerFactory =
    std::unique_ptr<SchedulerBase> (*)(Netlist& netlist);
void set_native_scheduler_factory(NativeSchedulerFactory factory);
[[nodiscard]] NativeSchedulerFactory native_scheduler_factory();

class Simulator {
 public:
  /// `threads` applies to SchedulerKind::Parallel only; 0 selects
  /// std::thread::hardware_concurrency().
  explicit Simulator(Netlist& netlist,
                     SchedulerKind kind = SchedulerKind::Dynamic,
                     unsigned threads = 0);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] Netlist& netlist() noexcept { return netlist_; }
  [[nodiscard]] SchedulerBase& scheduler() noexcept { return *sched_; }

  /// Execute one cycle.
  void step() { sched_->run_cycle(now_++); }

  /// Run up to `max_cycles` cycles, stopping early when a module calls
  /// request_stop().  Returns the number of cycles executed.  A pending
  /// stop request is cleared on entry, so run() is re-entrant: calling it
  /// again after an early stop resumes the simulation (a module whose stop
  /// condition still holds will simply stop it again after one cycle).
  Cycle run(Cycle max_cycles) {
    netlist_.clear_stop();
    Cycle executed = 0;
    while (executed < max_cycles && !netlist_.stop_requested()) {
      step();
      ++executed;
    }
    // A backend holding module state outside the module objects (native
    // codegen) publishes it now, so post-run stats dumps and save_state
    // describe the simulation that actually ran.
    sched_->sync_module_state();
    return executed;
  }

  /// Capture a between-cycles snapshot of the kernel: cycle counter, stop
  /// flag, and every module's serialized state.  Must not be called from
  /// inside a simulation hook.
  [[nodiscard]] KernelSnapshot snapshot() const;

  /// Rewind the simulator to `snap`.  Every module's load_state must
  /// consume exactly the slots its save_state produced; statistics and
  /// cumulative transfer counts are NOT rewound (replay reproduces
  /// behaviour, not counters).  Throws SimulationError on a module-count
  /// mismatch or a save/load protocol violation.
  void restore(const KernelSnapshot& snap);

  /// Attach an observer called for every completed transfer.
  void observe_transfers(SchedulerBase::TransferObserver obs) {
    sched_->add_transfer_observer(std::move(obs));
  }

  /// Install (or clear, with nullptr) the observability probe on the
  /// underlying scheduler (see liberty/core/probe.hpp).  Probes observe;
  /// they cannot perturb simulation results — the fuzz oracle verifies
  /// schedulers stay bit-identical with profiling enabled.
  void set_probe(KernelProbe* probe) noexcept { sched_->set_probe(probe); }

  /// Install (or clear, with nullptr) the deterministic fault-injection
  /// hook on the underlying scheduler (liberty/core/fault.hpp; implemented
  /// by liberty::resil::FaultInjector).  Unlike probes, fault hooks perturb
  /// the simulation — that is their purpose — but identically under every
  /// scheduler and optimization level.
  void set_fault_hook(FaultHook* hook) { sched_->set_fault_hook(hook); }

  /// Log every transfer to `os` (a minimal textual waveform for debugging
  /// and for the visualizer integration the paper anticipates).
  void trace_transfers(std::ostream& os);

 private:
  Netlist& netlist_;
  std::unique_ptr<SchedulerBase> sched_;
  Cycle now_ = 0;
};

}  // namespace liberty::core
