# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_kernel[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_pcl[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_lss[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_upl_isa[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_upl_core[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ccl[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_mpl[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_nil[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_props[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_scheduler_parallel[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_upl_mem[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ccl_topology[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_upl_ablation[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ccl_wormhole[1]_include.cmake")
