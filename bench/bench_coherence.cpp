// E10 (paper §3.4): snooping vs directory coherence at scale.
//
// The same sharing workload (every core increments its own word of a
// private line, plus reads of one shared line) runs on (a) the atomic
// snooping bus and (b) the directory protocol over a mesh.  Shape
// expectation: the snooping bus serializes every transaction globally, so
// completion time grows steeply with core count; the directory overlaps
// independent lines and scales, winning beyond a small crossover.
#include "bench_util.hpp"

using namespace liberty;
using namespace liberty::bench;

namespace {

std::string worker(int id, int iters) {
  // Private accumulation line + periodic read of the shared line at 64.
  const int addr = 256 + id * 8;  // distinct lines (line_words = 4)
  return "  li r2, 0\n"
         "  li r3, " + std::to_string(iters) + "\n"
         "loop:\n"
         "  lw r1, " + std::to_string(addr) + "(r0)\n"
         "  addi r1, r1, 1\n"
         "  sw r1, " + std::to_string(addr) + "(r0)\n"
         "  lw r4, 64(r0)\n"
         "  addi r2, r2, 1\n"
         "  blt r2, r3, loop\n"
         "  halt\n";
}

struct Outcome {
  std::uint64_t cycles = 0;
  std::uint64_t messages = 0;  // bus transactions / directory messages
};

Outcome run_snoop(int cores, int iters) {
  core::Netlist nl;
  auto& bus = nl.make<ccl::Bus>("bus", core::Params().set("occupancy", 1));
  auto& mem = nl.make<mpl::SnoopMemory>(
      "mem", core::Params().set("line_words", 4).set("latency", 8));
  std::vector<upl::SimpleCpu*> cpus;
  for (int i = 0; i < cores; ++i) {
    auto& cpu = nl.make<upl::SimpleCpu>("cpu" + std::to_string(i),
                                        core::Params());
    auto& l1 = nl.make<mpl::SnoopCache>(
        "l1_" + std::to_string(i),
        core::Params().set("id", i).set("sets", 16).set("line_words", 4));
    cpu.set_program(upl::assemble(worker(i, iters)));
    cpus.push_back(&cpu);
    nl.connect(cpu.out("mem_req"), l1.in("cpu_req"));
    nl.connect(l1.out("cpu_resp"), cpu.in("mem_resp"));
    nl.connect(l1.out("bus_out"), bus.in("in"));
    nl.connect(bus.out("out"), l1.in("bus_in"));
  }
  nl.connect(mem.out("bus_out"), bus.in("in"));
  nl.connect(bus.out("out"), mem.in("bus_in"));
  nl.finalize();
  core::Simulator sim(nl, core::SchedulerKind::Static);
  Outcome o;
  while (o.cycles < 3'000'000) {
    bool all = true;
    for (const auto* c : cpus) all = all && c->halted();
    if (all) break;
    sim.step();
    ++o.cycles;
  }
  o.messages = bus.stats().counter_value("transactions");
  return o;
}

Outcome run_directory(int cores, int iters, std::size_t dim) {
  core::Netlist nl;
  ccl::Fabric mesh = ccl::build_mesh(nl, "mesh", dim, dim);
  const std::size_t home = dim * dim - 1;
  std::vector<upl::SimpleCpu*> cpus;
  for (int i = 0; i < cores; ++i) {
    auto& cpu = nl.make<upl::SimpleCpu>("cpu" + std::to_string(i),
                                        core::Params());
    auto& l1 = nl.make<mpl::DirCache>(
        "l1_" + std::to_string(i),
        core::Params().set("id", i).set("sets", 16).set("line_words", 4)
            .set("home0", static_cast<std::int64_t>(home)));
    auto& ni = nl.make<nil::FabricAdapter>(
        "ni" + std::to_string(i), core::Params().set("id", i).set("vcs", 1));
    cpu.set_program(upl::assemble(worker(i, iters)));
    cpus.push_back(&cpu);
    nl.connect(cpu.out("mem_req"), l1.in("cpu_req"));
    nl.connect(l1.out("cpu_resp"), cpu.in("mem_resp"));
    nl.connect(l1.out("msg_out"), ni.in("msg_in"));
    nl.connect(ni.out("msg_out"), l1.in("msg_in"));
    nl.connect_at(ni.out("net_out"), 0, mesh.inject_port(i), 0);
    nl.connect_at(mesh.eject_port(i), 0, ni.in("net_in"), 0);
  }
  auto& dir = nl.make<mpl::DirectoryCtl>(
      "dir", core::Params().set("id", static_cast<std::int64_t>(home))
                 .set("home0", static_cast<std::int64_t>(home))
                 .set("line_words", 4).set("latency", 8));
  auto& dni = nl.make<nil::FabricAdapter>(
      "ni_dir", core::Params().set("id", static_cast<std::int64_t>(home))
                    .set("vcs", 1));
  nl.connect(dir.out("msg_out"), dni.in("msg_in"));
  nl.connect(dni.out("msg_out"), dir.in("msg_in"));
  nl.connect_at(dni.out("net_out"), 0, mesh.inject_port(home), 0);
  nl.connect_at(mesh.eject_port(home), 0, dni.in("net_in"), 0);
  nl.finalize();
  core::Simulator sim(nl, core::SchedulerKind::Static);
  Outcome o;
  while (o.cycles < 3'000'000) {
    bool all = true;
    for (const auto* c : cpus) all = all && c->halted();
    if (all) break;
    sim.step();
    ++o.cycles;
  }
  o.messages = dir.stats().counter_value("gets") +
               dir.stats().counter_value("getx") +
               dir.stats().counter_value("invs") +
               dir.stats().counter_value("data_sent");
  return o;
}

}  // namespace

int main() {
  std::printf("E10: snooping bus vs directory coherence\n\n");
  constexpr int kIters = 60;
  Table t({"cores", "snoop cycles", "dir cycles", "snoop/dir", "snoop msgs",
           "dir msgs"});
  struct Cfg {
    int cores;
    std::size_t dim;
  };
  for (const Cfg cfg : {Cfg{2, 2}, Cfg{3, 2}, Cfg{8, 3}, Cfg{15, 4}}) {
    const Outcome sn = run_snoop(cfg.cores, kIters);
    const Outcome dr = run_directory(cfg.cores, kIters, cfg.dim);
    t.row({fmt(static_cast<std::uint64_t>(cfg.cores)), fmt(sn.cycles),
           fmt(dr.cycles),
           fmt(static_cast<double>(sn.cycles) /
                   static_cast<double>(dr.cycles),
               2),
           fmt(sn.messages), fmt(dr.messages)});
  }
  t.print();
  std::printf("\nshape check: the atomic bus serializes all traffic, so its "
              "completion time grows much faster with core count; the "
              "directory overlaps independent lines and wins at scale.\n");
  return 0;
}
