file(REMOVE_RECURSE
  "libliberty_mpl.a"
)
