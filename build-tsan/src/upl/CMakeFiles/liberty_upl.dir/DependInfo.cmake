
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/upl/cache.cpp" "src/upl/CMakeFiles/liberty_upl.dir/cache.cpp.o" "gcc" "src/upl/CMakeFiles/liberty_upl.dir/cache.cpp.o.d"
  "/root/repo/src/upl/isa.cpp" "src/upl/CMakeFiles/liberty_upl.dir/isa.cpp.o" "gcc" "src/upl/CMakeFiles/liberty_upl.dir/isa.cpp.o.d"
  "/root/repo/src/upl/memctl.cpp" "src/upl/CMakeFiles/liberty_upl.dir/memctl.cpp.o" "gcc" "src/upl/CMakeFiles/liberty_upl.dir/memctl.cpp.o.d"
  "/root/repo/src/upl/ooo_core.cpp" "src/upl/CMakeFiles/liberty_upl.dir/ooo_core.cpp.o" "gcc" "src/upl/CMakeFiles/liberty_upl.dir/ooo_core.cpp.o.d"
  "/root/repo/src/upl/pipeline.cpp" "src/upl/CMakeFiles/liberty_upl.dir/pipeline.cpp.o" "gcc" "src/upl/CMakeFiles/liberty_upl.dir/pipeline.cpp.o.d"
  "/root/repo/src/upl/predictors.cpp" "src/upl/CMakeFiles/liberty_upl.dir/predictors.cpp.o" "gcc" "src/upl/CMakeFiles/liberty_upl.dir/predictors.cpp.o.d"
  "/root/repo/src/upl/registry.cpp" "src/upl/CMakeFiles/liberty_upl.dir/registry.cpp.o" "gcc" "src/upl/CMakeFiles/liberty_upl.dir/registry.cpp.o.d"
  "/root/repo/src/upl/simple_cpu.cpp" "src/upl/CMakeFiles/liberty_upl.dir/simple_cpu.cpp.o" "gcc" "src/upl/CMakeFiles/liberty_upl.dir/simple_cpu.cpp.o.d"
  "/root/repo/src/upl/workloads.cpp" "src/upl/CMakeFiles/liberty_upl.dir/workloads.cpp.o" "gcc" "src/upl/CMakeFiles/liberty_upl.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/liberty_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pcl/CMakeFiles/liberty_pcl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/liberty_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
