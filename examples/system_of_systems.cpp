// A complex system of systems (the paper's Figure 2(d)).
//
// "We envision small sensor nodes peppered around an area, collecting and
// communicating data wirelessly back to coarser-grain nodes with chip
// multiprocessors that analyze and coordinate groups of sensors.  Finally,
// analyzed data is aggregated back to a base camp where there are petaflops
// grids-in-a-box."
//
// Three tiers, all in one netlist — the composability claim end to end:
//   tier 1: sensor GPs (upl) -> CSMA wireless channel (ccl)
//   tier 2: an aggregator processor (upl) that ingests readings from its
//           radio, averages each batch, and DMA-ships results (mpl)
//   tier 3: the "base camp" board: local memory receiving DMA chunks over
//           a ring fabric (ccl) through fabric adapters (nil)
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/mpl/mpl.hpp"
#include "liberty/nil/nil.hpp"
#include "liberty/pcl/pcl.hpp"
#include "liberty/upl/upl.hpp"

using namespace liberty;
using core::Cycle;
using core::Params;

namespace {

/// Sensor-side radio (as in sensor_node.cpp).
class RadioTx final : public core::Module {
 public:
  RadioTx(const std::string& name, std::size_t id, std::size_t dst)
      : Module(name), id_(id), dst_(dst) {
    out_ = &add_out("out", 0, 1);
  }
  void enqueue(std::int64_t v) { pending_.push_back(v); }
  void cycle_start(Cycle c) override {
    if (!pending_.empty()) {
      auto flit = std::make_shared<ccl::Flit>(seq_, id_, dst_, c);
      flit->body = liberty::Value(pending_.front());
      out_->send(liberty::Value(
          std::static_pointer_cast<const Payload>(std::move(flit))));
    } else {
      out_->idle();
    }
  }
  void end_of_cycle() override {
    if (out_->transferred()) {
      pending_.pop_front();
      ++seq_;
    }
  }
  void declare_deps(core::Deps& d) const override { d.state_only(*out_); }

 private:
  std::size_t id_, dst_;
  std::uint64_t seq_ = 0;
  std::deque<std::int64_t> pending_;
  core::Port* out_ = nullptr;
};

/// Aggregator-side radio receiver: flits from the air become MMIO-readable
/// values for the aggregator processor.
class RadioRx final : public core::Module {
 public:
  explicit RadioRx(const std::string& name) : Module(name) {
    in_ = &add_in("in", core::AckMode::AutoAccept, 0, 1);
  }
  [[nodiscard]] std::int64_t mmio_read(std::uint64_t reg) {
    if (reg == 0) return static_cast<std::int64_t>(rx_.size());
    if (reg == 1 && !rx_.empty()) {
      const std::int64_t v = rx_.front();
      rx_.pop_front();
      return v;
    }
    return 0;
  }
  void end_of_cycle() override {
    if (in_->transferred()) {
      rx_.push_back(in_->data().as<ccl::Flit>()->body.as_int());
    }
  }

 private:
  core::Port* in_ = nullptr;
  std::deque<std::int64_t> rx_;
};

std::string sensor_prog(int node, int samples) {
  return
         "  li r12, " + std::to_string(node * 29 + 3) + "\n"
         "off:\n"
         "  addi r12, r12, -1\n"
         "  bne r12, r0, off\n"
         "  li r5, " + std::to_string(node * 31 + 7) + "\n"
         "  li r6, 0\n"
         "  li r7, " + std::to_string(samples) + "\n"
         "sample:\n"
         "  li r8, 17\n"
         "  mul r5, r5, r8\n"
         "  li r8, 100\n"
         "  rem r5, r5, r8\n"
         "  sw r5, 4096(r0)\n"
         "  li r10, 0\n"
         "idle:\n"
         "  addi r10, r10, 1\n"
         "  slti r11, r10, 48\n"
         "  bne r11, r0, idle\n"
         "  addi r6, r6, 1\n"
         "  blt r6, r7, sample\n"
         "  halt\n";
}

/// Aggregator: collect `total` readings from the radio (MMIO 5000=count,
/// 5001=pop), sum them into memory at 100, then start the DMA to the base
/// camp (DMA registers at MMIO 5100+).
std::string aggregator_prog(int total) {
  return "  li r1, 0\n"   // collected
         "  li r2, " + std::to_string(total) + "\n"
         "  li r3, 0\n"   // running sum
         "collect:\n"
         "  lw r4, 5000(r0)\n"
         "  beq r4, r0, collect\n"
         "  lw r5, 5001(r0)\n"
         "  add r3, r3, r5\n"
         "  addi r1, r1, 1\n"
         "  blt r1, r2, collect\n"
         "  sw r3, 100(r0)\n"  // analyzed result into local memory
         // DMA to base camp: src=100 len=1 dst_node=1 dst_addr=700, go.
         "  li r6, 100\n"
         "  sw r6, 5100(r0)\n"
         "  li r6, 1\n"
         "  sw r6, 5101(r0)\n"
         "  li r6, 700\n"
         "  sw r6, 5102(r0)\n"
         "  li r6, 1\n"
         "  sw r6, 5103(r0)\n"
         "  li r6, 1\n"
         "  sw r6, 5104(r0)\n"
         "  halt\n";
}

}  // namespace

int main() {
  constexpr std::size_t kSensors = 4;
  constexpr int kSamples = 5;

  core::Netlist nl;

  // Tier 1: sensors + wireless.
  auto& air = nl.make<ccl::WirelessChannel>(
      "air", Params().set("airtime", 4).set("loss", 0.0));
  std::vector<upl::SimpleCpu*> sensors;
  for (std::size_t i = 0; i < kSensors; ++i) {
    auto& gp = nl.make<upl::SimpleCpu>("sensor" + std::to_string(i),
                                       Params());
    auto& radio = nl.make<RadioTx>("radio" + std::to_string(i), i, kSensors);
    gp.set_program(
        upl::assemble(sensor_prog(static_cast<int>(i), kSamples)));
    gp.map_mmio(4096, 1, nullptr,
                [&radio](std::uint64_t, std::int64_t v) { radio.enqueue(v); });
    sensors.push_back(&gp);
    nl.connect_at(radio.out("out"), 0, air.in("in"), i);
  }

  // Tier 2: the aggregator node (radio rx + GP + local memory + DMA).
  auto& agg_rx = nl.make<RadioRx>("agg_rx");
  nl.connect_at(air.out("out"), kSensors, agg_rx.in("in"), 0);
  auto& agg = nl.make<upl::SimpleCpu>("aggregator", Params());
  auto& agg_mem = nl.make<pcl::MemoryArray>(
      "agg_mem", Params().set("latency", 1).set("ports", 2));
  auto& agg_dma = nl.make<mpl::DmaCtl>("agg_dma", Params());
  agg.set_program(upl::assemble(
      aggregator_prog(static_cast<int>(kSensors) * kSamples)));
  agg.map_mmio(5000, 2,
               [&agg_rx](std::uint64_t a) {
                 return agg_rx.mmio_read(a - 5000);
               },
               nullptr);
  agg.map_mmio(5100, 8,
               [&agg_dma](std::uint64_t a) {
                 return agg_dma.mmio_read(a - 5100);
               },
               [&agg_dma](std::uint64_t a, std::int64_t v) {
                 agg_dma.mmio_write(a - 5100, v);
               });
  nl.connect_at(agg.out("mem_req"), 0, agg_mem.in("req"), 0);
  nl.connect_at(agg_mem.out("resp"), 0, agg.in("mem_resp"), 0);
  nl.connect_at(agg_dma.out("mem_req"), 0, agg_mem.in("req"), 1);
  nl.connect_at(agg_mem.out("resp"), 1, agg_dma.in("mem_resp"), 0);

  // Tier 3: base camp across a 4-node ring fabric.
  ccl::Fabric ring = ccl::build_ring(nl, "backbone", 4);
  auto& agg_ni = nl.make<nil::FabricAdapter>(
      "agg_ni", Params().set("id", 0).set("vcs", 1));
  nl.connect(agg_dma.out("net_out"), agg_ni.in("msg_in"));
  nl.connect(agg_ni.out("msg_out"), agg_dma.in("net_in"));
  nl.connect_at(agg_ni.out("net_out"), 0, ring.inject_port(0), 0);
  nl.connect_at(ring.eject_port(0), 0, agg_ni.in("net_in"), 0);

  auto& camp_mem = nl.make<pcl::MemoryArray>(
      "camp_mem", Params().set("latency", 2));
  auto& camp_dma = nl.make<mpl::DmaCtl>("camp_dma", Params());
  auto& camp_ni = nl.make<nil::FabricAdapter>(
      "camp_ni", Params().set("id", 1).set("vcs", 1));
  nl.connect(camp_dma.out("mem_req"), camp_mem.in("req"));
  nl.connect(camp_mem.out("resp"), camp_dma.in("mem_resp"));
  nl.connect(camp_dma.out("net_out"), camp_ni.in("msg_in"));
  nl.connect(camp_ni.out("msg_out"), camp_dma.in("net_in"));
  nl.connect_at(camp_ni.out("net_out"), 0, ring.inject_port(1), 0);
  nl.connect_at(ring.eject_port(1), 0, camp_ni.in("net_in"), 0);

  nl.finalize();

  core::Simulator sim(nl, core::SchedulerKind::Static);
  std::uint64_t cycles = 0;
  while (cycles < 500'000 && !camp_dma.rx_done()) {
    sim.step();
    ++cycles;
  }

  std::printf("system of systems: %zu sensors -> wireless -> aggregator -> "
              "ring backbone -> base camp\n",
              kSensors);
  std::printf("end-to-end aggregation finished in %llu cycles\n",
              (unsigned long long)cycles);
  std::printf("base camp received analyzed value %lld\n",
              (long long)camp_mem.peek(700));
  std::printf("modules: %zu instances, %zu connections, four libraries in "
              "one netlist\n",
              nl.module_count(), nl.connection_count());
  return camp_dma.rx_done() ? 0 : 1;
}
