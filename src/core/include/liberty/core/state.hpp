// Module state serialization: the substrate of kernel snapshot/restore.
//
// A snapshot captures, between cycles, everything a module needs to resume
// deterministically: sequential state, RNG words, cumulative counts that
// feed behaviour (e.g. a sink's stop_after progress).  State is held
// in-process as a flat sequence of Values — payloads are immutable once
// published (see value.hpp), so a snapshot may share them by pointer
// instead of deep-copying.
//
// The contract between save_state and load_state is positional: load_state
// must read exactly the slots save_state wrote, in the same order.  The
// reader throws on underflow and Simulator::restore verifies full
// consumption, so a save/load mismatch is an immediate error rather than a
// silently corrupted replay.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "liberty/support/error.hpp"
#include "liberty/support/rng.hpp"
#include "liberty/support/value.hpp"

namespace liberty::core {

class StateWriter {
 public:
  void put(Value v) { slots_.push_back(std::move(v)); }
  void put_bool(bool b) { slots_.emplace_back(b); }
  void put_i64(std::int64_t x) { slots_.emplace_back(x); }
  void put_u64(std::uint64_t x) {
    slots_.emplace_back(static_cast<std::int64_t>(x));
  }
  void put_size(std::size_t x) {
    slots_.emplace_back(static_cast<std::int64_t>(x));
  }
  void put_real(double x) { slots_.emplace_back(x); }
  void put_string(std::string s) { slots_.emplace_back(std::move(s)); }

  [[nodiscard]] const std::vector<Value>& slots() const noexcept {
    return slots_;
  }
  [[nodiscard]] std::vector<Value> take() && { return std::move(slots_); }

 private:
  std::vector<Value> slots_;
};

class StateReader {
 public:
  StateReader(const std::vector<Value>& slots, std::string who)
      : slots_(slots), who_(std::move(who)) {}

  [[nodiscard]] const Value& get() {
    if (next_ >= slots_.size()) {
      throw liberty::SimulationError(
          "state restore underflow in module '" + who_ + "': slot " +
          std::to_string(next_) + " requested, " +
          std::to_string(slots_.size()) + " saved");
    }
    return slots_[next_++];
  }
  [[nodiscard]] bool get_bool() { return get().as_bool(); }
  [[nodiscard]] std::int64_t get_i64() { return get().as_int(); }
  [[nodiscard]] std::uint64_t get_u64() {
    return static_cast<std::uint64_t>(get().as_int());
  }
  [[nodiscard]] std::size_t get_size() {
    return static_cast<std::size_t>(get().as_int());
  }
  [[nodiscard]] double get_real() { return get().as_real(); }
  [[nodiscard]] const std::string& get_string() { return get().as_string(); }

  [[nodiscard]] bool exhausted() const noexcept {
    return next_ == slots_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return slots_.size() - next_;
  }

 private:
  const std::vector<Value>& slots_;
  std::string who_;
  std::size_t next_ = 0;
};

/// Save/restore an Rng's raw state (stochastic modules must draw the same
/// stream after a restore that they would have drawn uninterrupted).
inline void save_rng(StateWriter& w, const liberty::Rng& rng) {
  for (std::uint64_t word : rng.state()) w.put_u64(word);
}
inline void load_rng(StateReader& r, liberty::Rng& rng) {
  std::array<std::uint64_t, 4> s{};
  for (auto& word : s) word = r.get_u64();
  rng.set_state(s);
}

/// Order-sensitive FNV-1a digest over a state slot sequence.  Payload slots
/// hash their describe() rendering, so two modules agree on a digest iff
/// their states render identically — pointer identity never leaks in.
[[nodiscard]] std::uint64_t digest_slots(const std::vector<Value>& slots);

/// Fold one 64-bit word into a running FNV-1a digest (shared by the
/// testing oracle for transfer-trace hashing).
[[nodiscard]] constexpr std::uint64_t fnv1a_mix(std::uint64_t h,
                                                std::uint64_t word) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xffU;
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline constexpr std::uint64_t kFnv1aInit = 0xcbf29ce484222325ULL;

/// Digest a single Value (string content, not pointer identity).
[[nodiscard]] std::uint64_t digest_value(std::uint64_t h, const Value& v);

}  // namespace liberty::core
