file(REMOVE_RECURSE
  "CMakeFiles/bench_coherence.dir/bench_coherence.cpp.o"
  "CMakeFiles/bench_coherence.dir/bench_coherence.cpp.o.d"
  "bench_coherence"
  "bench_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
