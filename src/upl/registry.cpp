#include <typeindex>

#include "liberty/core/checkpoint.hpp"
#include "liberty/upl/upl.hpp"

namespace liberty::upl {

using liberty::core::ByteReader;
using liberty::core::ByteWriter;
using liberty::core::ModuleRegistry;
using liberty::core::simple_factory;

namespace {

void put_words(ByteWriter& w, const std::vector<std::int64_t>& words) {
  w.put_u32(static_cast<std::uint32_t>(words.size()));
  for (const std::int64_t x : words) w.put_i64(x);
}

std::vector<std::int64_t> get_words(ByteReader& r) {
  const std::uint32_t n = r.get_u32();
  std::vector<std::int64_t> words;
  words.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) words.push_back(r.get_i64());
  return words;
}

void register_payload_codecs() {
  core::register_payload_codec(
      "upl.linereq", std::type_index(typeid(LineReq)),
      [](const Payload& p, ByteWriter& w) {
        const auto& q = static_cast<const LineReq&>(p);
        w.put_u8(static_cast<std::uint8_t>(q.kind));
        w.put_u64(q.line);
        w.put_u64(q.tag);
        w.put_u64(q.requester);
        put_words(w, q.words);
      },
      [](ByteReader& r) {
        const auto kind = static_cast<LineReq::Kind>(r.get_u8());
        const std::uint64_t line = r.get_u64();
        const std::uint64_t tag = r.get_u64();
        const auto requester = static_cast<std::size_t>(r.get_u64());
        std::vector<std::int64_t> words = get_words(r);
        return Value::make<LineReq>(kind, line, tag, requester,
                                    std::move(words));
      });
  core::register_payload_codec(
      "upl.lineresp", std::type_index(typeid(LineResp)),
      [](const Payload& p, ByteWriter& w) {
        const auto& q = static_cast<const LineResp&>(p);
        w.put_u64(q.line);
        w.put_u64(q.tag);
        w.put_u64(q.requester);
        put_words(w, q.words);
        w.put_u8(q.exclusive ? 1 : 0);
      },
      [](ByteReader& r) {
        const std::uint64_t line = r.get_u64();
        const std::uint64_t tag = r.get_u64();
        const auto requester = static_cast<std::size_t>(r.get_u64());
        std::vector<std::int64_t> words = get_words(r);
        const bool exclusive = r.get_u8() != 0;
        return Value::make<LineResp>(line, tag, requester, std::move(words),
                                     exclusive);
      });
  core::register_payload_codec(
      "upl.instr", std::type_index(typeid(InstrToken)),
      [](const Payload& p, ByteWriter& w) {
        const auto& t = static_cast<const InstrToken&>(p);
        w.put_u64(t.pc);
        w.put_u64(t.seq);
        w.put_u64(t.epoch);
        w.put_u8(static_cast<std::uint8_t>(t.instr.op));
        w.put_u8(t.instr.rd);
        w.put_u8(t.instr.rs1);
        w.put_u8(t.instr.rs2);
        w.put_i64(t.instr.imm);
        w.put_u8(t.pred_taken ? 1 : 0);
        w.put_u64(t.pred_target);
        w.put_i64(t.a);
        w.put_i64(t.b);
        w.put_i64(t.result.value);
        w.put_u64(t.result.mem_addr);
        w.put_u8(t.result.taken ? 1 : 0);
        w.put_u64(t.result.target);
        w.put_u8(t.result.writes_reg ? 1 : 0);
        w.put_u8(t.result.halts ? 1 : 0);
        w.put_u8(t.result.out.has_value() ? 1 : 0);
        if (t.result.out.has_value()) w.put_i64(*t.result.out);
      },
      [](ByteReader& r) {
        auto t = std::make_shared<InstrToken>();
        t->pc = r.get_u64();
        t->seq = r.get_u64();
        t->epoch = r.get_u64();
        t->instr.op = static_cast<Op>(r.get_u8());
        t->instr.rd = r.get_u8();
        t->instr.rs1 = r.get_u8();
        t->instr.rs2 = r.get_u8();
        t->instr.imm = r.get_i64();
        t->pred_taken = r.get_u8() != 0;
        t->pred_target = r.get_u64();
        t->a = r.get_i64();
        t->b = r.get_i64();
        t->result.value = r.get_i64();
        t->result.mem_addr = r.get_u64();
        t->result.taken = r.get_u8() != 0;
        t->result.target = r.get_u64();
        t->result.writes_reg = r.get_u8() != 0;
        t->result.halts = r.get_u8() != 0;
        if (r.get_u8() != 0) t->result.out = r.get_i64();
        return Value(std::shared_ptr<const Payload>(std::move(t)));
      });
  core::register_payload_codec(
      "upl.resolution", std::type_index(typeid(Resolution)),
      [](const Payload& p, ByteWriter& w) {
        const auto& q = static_cast<const Resolution&>(p);
        w.put_u64(q.branch_pc);
        w.put_u64(q.branch_seq);
        w.put_u8(q.taken ? 1 : 0);
        w.put_u64(q.target);
        w.put_u8(q.mispredicted ? 1 : 0);
        w.put_u8(q.is_conditional ? 1 : 0);
      },
      [](ByteReader& r) {
        auto q = std::make_shared<Resolution>();
        q->branch_pc = r.get_u64();
        q->branch_seq = r.get_u64();
        q->taken = r.get_u8() != 0;
        q->target = r.get_u64();
        q->mispredicted = r.get_u8() != 0;
        q->is_conditional = r.get_u8() != 0;
        return Value(std::shared_ptr<const Payload>(std::move(q)));
      });
}

}  // namespace

void register_upl(ModuleRegistry& r) {
  register_payload_codecs();
  r.register_template("upl.fetch", "pipeline fetch stage with prediction",
                      simple_factory<FetchStage>());
  r.register_template("upl.decode", "pipeline decode stage (scoreboard)",
                      simple_factory<DecodeStage>());
  r.register_template("upl.execute", "pipeline execute stage",
                      simple_factory<ExecuteStage>());
  r.register_template("upl.mem", "pipeline memory stage",
                      simple_factory<MemStage>());
  r.register_template("upl.writeback", "pipeline writeback stage",
                      simple_factory<WritebackStage>());
  r.register_template("upl.simple_cpu", "behavioral CPU with memory port",
                      simple_factory<SimpleCpu>());
  r.register_template("upl.ooo_core", "trace-driven out-of-order core",
                      simple_factory<OoOCore>());
  r.register_template("upl.cache", "set-associative cache",
                      simple_factory<CacheModule>());
  r.register_template("upl.memctl", "line-protocol memory controller",
                      simple_factory<MemoryCtl>());
}

}  // namespace liberty::upl
