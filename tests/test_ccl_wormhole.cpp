// Wormhole (multi-flit) packets: routing integrity, non-interleaving, and
// the blocking behaviour long packets impose on crossing traffic.
#include <gtest/gtest.h>

#include <map>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/simulator.hpp"
#include "test_util.hpp"

namespace {

using liberty::Value;
using liberty::core::Cycle;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using namespace liberty::ccl;
using liberty::test::params;

class Wormhole : public ::testing::TestWithParam<SchedulerKind> {};
INSTANTIATE_TEST_SUITE_P(BothSchedulers, Wormhole,
                         ::testing::Values(SchedulerKind::Dynamic,
                                           SchedulerKind::Static),
                         [](const auto& info) {
                           return info.param == SchedulerKind::Dynamic
                                      ? "Dynamic"
                                      : "Static";
                         });

/// Records the exact flit sequence arriving at one node.
class FlitRecorder final : public liberty::core::Module {
 public:
  explicit FlitRecorder(const std::string& name)
      : liberty::core::Module(name) {
    in_ = &add_in("in", liberty::core::AckMode::AutoAccept, 0, 1);
  }
  void end_of_cycle() override {
    if (in_->transferred()) {
      flits.push_back(in_->data().as<Flit>());
    }
  }
  std::vector<std::shared_ptr<const Flit>> flits;

 private:
  liberty::core::Port* in_ = nullptr;
};

TEST_P(Wormhole, PacketsArriveContiguousAndComplete) {
  // Two senders aim 4-flit packets at one destination across a mesh; the
  // arrival stream at the destination must never interleave flits of
  // different packets (the wormhole output lock).
  Netlist nl;
  Fabric mesh = build_mesh(nl, "mesh", 3, 3);
  for (int s = 0; s < 2; ++s) {
    auto& g = nl.make<TrafficGen>(
        "g" + std::to_string(s),
        params({{"pattern", "fixed"}, {"dst", 8}, {"rate", 0.3},
                {"count", 10}, {"length", 4},
                {"id", s}, {"nodes", 9}, {"vcs", 1},
                {"seed", s + 5}}));
    nl.connect_at(g.out("out"), 0, mesh.inject_port(s), 0);
  }
  auto& rec = nl.make<FlitRecorder>("rec");
  nl.connect_at(mesh.eject_port(8), 0, rec.in("in"), 0);
  nl.finalize();
  Simulator sim(nl, GetParam());
  sim.run(4000);

  ASSERT_EQ(rec.flits.size(), 2u * 10u * 4u);
  // Walk the stream: a head opens a packet; until its tail, every flit
  // must belong to the same packet.
  std::uint64_t open_packet = 0;
  bool open = false;
  std::map<std::uint64_t, int> flits_per_packet;
  for (const auto& f : rec.flits) {
    if (!open) {
      ASSERT_TRUE(f->head) << "stray body flit outside any packet";
      open_packet = f->packet;
      open = !f->tail;
    } else {
      ASSERT_FALSE(f->head);
      ASSERT_EQ(f->packet, open_packet) << "interleaved packets";
      if (f->tail) open = false;
    }
    ++flits_per_packet[f->packet];
  }
  EXPECT_FALSE(open) << "truncated final packet";
  for (const auto& [pkt, n] : flits_per_packet) {
    EXPECT_EQ(n, 4) << "packet " << pkt;
  }
}

TEST_P(Wormhole, LongPacketsBlockSharedOutputChannel) {
  // Flows A (3 -> 5) and B (4 -> 5) share router 4's east output.  When A
  // uses long wormhole packets, B's flits wait behind whole packets and
  // B's latency rises.
  auto contended_latency = [&](int length) {
    Netlist nl;
    Fabric mesh = build_mesh(nl, "mesh", 3, 3);
    auto& a = nl.make<TrafficGen>(
        "a", params({{"pattern", "fixed"}, {"dst", 5}, {"rate", 0.12},
                     {"count", 40}, {"length", length}, {"id", 3},
                     {"nodes", 9}, {"vcs", 1}, {"seed", 2}}));
    auto& b = nl.make<TrafficGen>(
        "b", params({{"pattern", "fixed"}, {"dst", 5}, {"rate", 0.1},
                     {"count", 25}, {"length", 1}, {"id", 4},
                     {"nodes", 9}, {"vcs", 1}, {"seed", 3}}));
    auto& rec = nl.make<FlitRecorder>("rec");
    nl.connect_at(a.out("out"), 0, mesh.inject_port(3), 0);
    nl.connect_at(b.out("out"), 0, mesh.inject_port(4), 0);
    nl.connect_at(mesh.eject_port(5), 0, rec.in("in"), 0);
    nl.finalize();
    Simulator sim(nl, GetParam());
    // Track arrival cycles to compute flow B's mean latency.
    double b_lat = 0.0;
    std::size_t b_n = 0;
    sim.observe_transfers(
        [&](const liberty::core::Connection& c, Cycle cycle) {
          if (c.consumer()->name() != "rec") return;
          const auto f = c.data().as<Flit>();
          if (f->src == 4) {
            b_lat += static_cast<double>(cycle - f->born);
            ++b_n;
          }
        });
    sim.run(8000);
    EXPECT_EQ(b_n, 25u);
    return b_n == 0 ? 0.0 : b_lat / static_cast<double>(b_n);
  };
  const double with_short = contended_latency(1);
  const double with_long = contended_latency(8);
  EXPECT_GT(with_long, with_short);
}

TEST_P(Wormhole, SingleFlitBehaviourUnchangedByLengthOne) {
  // length=1 must reduce to the plain single-flit router (packets ==
  // flits, no residual locks).
  Netlist nl;
  Fabric mesh = build_mesh(nl, "mesh", 2, 2);
  auto& g = nl.make<TrafficGen>(
      "g", params({{"pattern", "uniform"}, {"rate", 0.2}, {"count", 30},
                   {"length", 1}, {"id", 0}, {"nodes", 4}, {"seed", 9}}));
  auto& s1 = nl.make<TrafficSink>("s1", Params());
  auto& s2 = nl.make<TrafficSink>("s2", Params());
  auto& s3 = nl.make<TrafficSink>("s3", Params());
  nl.connect_at(g.out("out"), 0, mesh.inject_port(0), 0);
  nl.connect_at(mesh.eject_port(1), 0, s1.in("in"), 0);
  nl.connect_at(mesh.eject_port(2), 0, s2.in("in"), 0);
  nl.connect_at(mesh.eject_port(3), 0, s3.in("in"), 0);
  nl.finalize();
  Simulator sim(nl, GetParam());
  sim.run(2000);
  const auto total = s1.received() + s2.received() + s3.received();
  EXPECT_EQ(total, 30u);
  const auto packets = s1.stats().counter_value("packets") +
                       s2.stats().counter_value("packets") +
                       s3.stats().counter_value("packets");
  EXPECT_EQ(packets, 30u);
}

}  // namespace
