# Empty compiler generated dependencies file for bench_sensor.
# This may be replaced when dependencies are built.
