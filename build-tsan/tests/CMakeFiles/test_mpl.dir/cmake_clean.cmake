file(REMOVE_RECURSE
  "CMakeFiles/test_mpl.dir/test_mpl.cpp.o"
  "CMakeFiles/test_mpl.dir/test_mpl.cpp.o.d"
  "test_mpl"
  "test_mpl.pdb"
  "test_mpl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
