// Structural in-order pipeline: five communicating stage modules.
//
// This is the paper's methodology applied to a processor: the model *is* the
// block diagram.  Fetch, Decode, Execute, Mem, and Writeback are separate
// module instances wired by ports; hazards, branch redirects, and cache
// stalls all travel through the same three-signal handshake as every other
// component, so any stage can be replaced by a more or less detailed model
// (§2.2 iterative refinement).
//
//   fetch.out ──> decode.in ──> exec.in ──> mem.in ──> wb.in
//        ^                          │          │
//        └──────── resolve ─────────┘          ├─ dreq  ──> cache.cpu_req
//                                              └─ dresp <── cache.cpu_resp
//
// Speculation: Fetch predicts branch directions (pluggable Predictor) and
// jalr targets (BTB).  Execute resolves; every branch sends a Resolution to
// Fetch for training, and a mispredict bumps the core's epoch, squashing
// younger in-flight instructions (identified by sequence number) without
// any per-stage flush wiring.
//
// Stages share architectural state through a CoreState object; when built
// from LSS (where modules cannot share C++ objects directly) the stages
// rendezvous on the CoreHub under their "core" parameter.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "liberty/core/module.hpp"
#include "liberty/core/netlist.hpp"
#include "liberty/core/params.hpp"
#include "liberty/upl/isa.hpp"
#include "liberty/upl/predictors.hpp"

namespace liberty::upl {

/// Architectural + hazard state shared by the five stages of one core.
struct CoreState {
  Program program;
  std::vector<std::int64_t> regs = std::vector<std::int64_t>(32, 0);

  struct BusyEntry {
    bool busy = false;
    std::uint64_t producer_seq = 0;
  };
  std::array<BusyEntry, 32> busy{};

  std::uint64_t epoch = 0;  // bumped by Execute on every squash
  /// Set by Execute together with the epoch bump; consumed by Fetch at the
  /// top of the next cycle, *before* fetching, so that post-squash fetches
  /// are on the correct path from the first new-epoch token.
  std::optional<std::uint64_t> redirect;
  bool halted = false;
  std::uint64_t retired = 0;
  std::uint64_t squashed = 0;
  std::vector<std::int64_t> output;

  [[nodiscard]] bool reg_busy(std::size_t r) const {
    return r != 0 && busy[r].busy;
  }
  void mark_busy(std::size_t r, std::uint64_t seq) {
    if (r != 0) busy[r] = {true, seq};
  }
  void clear_busy(std::size_t r, std::uint64_t seq) {
    if (r != 0 && busy[r].busy && busy[r].producer_seq == seq) {
      busy[r].busy = false;
    }
  }
  /// Squash: forget busy bits owned by wrong-path producers.
  void squash_after(std::uint64_t seq) {
    for (auto& b : busy) {
      if (b.busy && b.producer_seq > seq) b.busy = false;
    }
  }
};

/// An instruction in flight.  Immutable: each stage republishes an updated
/// copy downstream.
struct InstrToken final : Payload {
  std::uint64_t pc = 0;
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;
  Instr instr;
  bool pred_taken = false;
  std::uint64_t pred_target = 0;
  std::int64_t a = 0;  // operand values, read at decode
  std::int64_t b = 0;
  ExecResult result;   // filled at execute

  [[nodiscard]] std::string describe() const override {
    return "#" + std::to_string(seq) + "@" + std::to_string(pc) + " " +
           instr.to_string();
  }
};

/// Branch resolution, Execute -> Fetch.
struct Resolution final : Payload {
  std::uint64_t branch_pc = 0;
  std::uint64_t branch_seq = 0;
  bool taken = false;
  std::uint64_t target = 0;   // next PC on the correct path
  bool mispredicted = false;
  bool is_conditional = false;

  [[nodiscard]] std::string describe() const override {
    return std::string("resolve@") + std::to_string(branch_pc) +
           (mispredicted ? " MISS" : " ok");
  }
};

/// Rendezvous for LSS-built cores: stages that share a "core" parameter get
/// the same CoreState.  C++ builders can also use it, or wire states
/// directly via set_state().
class CoreHub {
 public:
  static std::shared_ptr<CoreState> get(const std::string& core_name);
  /// Drop all registered cores (between independent simulations/tests).
  static void reset();
};

namespace detail {
/// Common scaffolding for single-in/single-out pipeline stages holding one
/// instruction: offers the processed held token each cycle and accepts a
/// new one as soon as the slot frees (bypass ack, like pcl.queue).
class StageBase : public liberty::core::Module {
 public:
  StageBase(const std::string& name, const liberty::core::Params& params,
            bool has_in, bool has_out);

  void set_state(std::shared_ptr<CoreState> s) { state_ = std::move(s); }
  [[nodiscard]] const std::shared_ptr<CoreState>& state() const {
    return state_;
  }

  /// Stages are unusable without shared core state.
  void init() override;

 protected:
  std::shared_ptr<CoreState> state_;
  liberty::core::Port* in_ = nullptr;
  liberty::core::Port* out_ = nullptr;
};
}  // namespace detail

/// Fetch: program counter, branch prediction, squash handling.
/// Parameters: core (hub key), predictor ("taken"|"not_taken"|"bimodal"|
/// "gshare"|"tournament"), btb_entries, program (LRISC asm text; optional —
/// C++ builders usually install the program into CoreState directly).
class FetchStage final : public detail::StageBase {
 public:
  FetchStage(const std::string& name, const liberty::core::Params& params);

  void init() override;
  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;

  [[nodiscard]] const Predictor& predictor() const { return *pred_; }

 private:
  [[nodiscard]] liberty::Value make_token();

  liberty::core::Port& resolve_;
  std::string program_src_;  // optional asm text from the LSS parameter
  std::unique_ptr<Predictor> pred_;
  Btb btb_;
  std::uint64_t pc_ = 0;
  std::uint64_t next_seq_ = 1;
  bool stalled_on_halt_ = false;
  std::optional<liberty::Value> slot_;  // fetched, waiting to issue
};

/// Decode: scoreboard interlock, register read.
class DecodeStage final : public detail::StageBase {
 public:
  DecodeStage(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void react() override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;

 private:
  std::optional<liberty::Value> held_;  // decoded, waiting for execute
};

/// Execute: functional evaluation, branch resolution.
class ExecuteStage final : public detail::StageBase {
 public:
  ExecuteStage(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void react() override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;

 private:
  liberty::core::Port& resolve_;
  std::optional<liberty::Value> held_;       // result token
  std::optional<liberty::Value> resolution_; // pending resolve message
  liberty::core::Cycle ready_ = 0;           // multi-cycle ALU ops
  std::uint64_t mul_latency_;
  std::uint64_t div_latency_;
};

/// Mem: loads/stores through the data cache ports; everything else passes.
class MemStage final : public detail::StageBase {
 public:
  MemStage(const std::string& name, const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void react() override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;

 private:
  liberty::core::Port& dreq_;
  liberty::core::Port& dresp_;
  std::optional<liberty::Value> held_;     // completed, ready for writeback
  std::optional<liberty::Value> waiting_;  // load/store in flight
  liberty::Value pending_req_;             // the MemReq for waiting_
  bool req_sent_ = false;
  std::uint64_t next_tag_ = 1;
};

/// Writeback: commit, busy-bit release, retirement accounting.
/// Parameter: stop_on_halt (default true).
class WritebackStage final : public detail::StageBase {
 public:
  WritebackStage(const std::string& name,
                 const liberty::core::Params& params);

  void cycle_start(liberty::core::Cycle c) override;
  void end_of_cycle() override;
  void declare_deps(liberty::core::Deps& deps) const override;

 private:
  bool stop_on_halt_;
};

/// References to the stages of one assembled core.
struct InorderCore {
  FetchStage* fetch = nullptr;
  DecodeStage* decode = nullptr;
  ExecuteStage* exec = nullptr;
  MemStage* mem = nullptr;
  WritebackStage* wb = nullptr;
  std::shared_ptr<CoreState> state;

  [[nodiscard]] double ipc(std::uint64_t cycles) const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(state->retired) /
                             static_cast<double>(cycles);
  }
};

/// Build the five stages (named "<prefix>.fetch" etc.), wire them together,
/// attach `program`, and return the handles.  The data-side cache ports
/// (mem stage dreq/dresp) are left for the caller to connect — directly to
/// a memory, to a upl.cache, or to an MPL coherence controller.
InorderCore build_inorder_core(liberty::core::Netlist& netlist,
                               const std::string& prefix,
                               const Program& program,
                               const liberty::core::Params& params);

}  // namespace liberty::upl
