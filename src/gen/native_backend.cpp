// Native codegen, part 2: the toolchain driver (only compiled when
// LIBERTY_NATIVE_CODEGEN is ON).
//
// Responsibilities: identify the host compiler, content-address the
// artifact on (generated source, compiler identification, -O level),
// reuse a cached shared object when one exists, otherwise compile and
// publish it atomically, then dlopen and resolve the ln_* entry points.
// Every failure mode — no compiler, compile error, dlopen or symbol
// failure, ABI mismatch, or the LIBERTY_NATIVE_FORCE_FAIL=1 test override
// — is reported as one reason string; the scheduler degrades to bytecode.
#include <dlfcn.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "liberty/gen/native.hpp"
#include "native_impl.hpp"

namespace liberty::gen {

namespace fs = std::filesystem;

namespace {

std::string quoted(const std::string& s) { return "'" + s + "'"; }

std::string compiler_path() {
  if (const char* env = std::getenv("LIBERTY_NATIVE_CXX");
      env != nullptr && env[0] != '\0') {
    return env;
  }
#ifdef LIBERTY_NATIVE_CXX_DEFAULT
  return LIBERTY_NATIVE_CXX_DEFAULT;
#else
  return "c++";
#endif
}

int backend_opt_level() {
  if (const char* env = std::getenv("LIBERTY_NATIVE_OPT");
      env != nullptr && env[0] != '\0') {
    const int v = std::atoi(env);
    if (v >= 0 && v <= 3) return v;
  }
  const int v = native_options().backend_opt;
  return v >= 0 && v <= 3 ? v : 2;
}

fs::path cache_dir() {
  if (const std::string& dir = native_options().cache_dir; !dir.empty()) {
    return dir;
  }
  if (const char* env = std::getenv("LIBERTY_NATIVE_CACHE_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return fs::temp_directory_path() / "liberty-native-cache";
}

/// First line of `<cxx> --version` — the cache-key ingredient that retires
/// stale artifacts across compiler upgrades.  Empty on failure.
std::string compiler_identification(const std::string& cxx) {
  FILE* pipe = ::popen((quoted(cxx) + " --version 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return {};
  char buf[512];
  std::string line;
  if (std::fgets(buf, sizeof buf, pipe) != nullptr) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
  }
  ::pclose(pipe);
  return line;
}

std::string hex_key(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

bool resolve_symbols(LoadedImage& img, std::string& err) {
  const auto sym = [&](const char* name) -> void* {
    void* p = ::dlsym(img.dl, name);
    if (p == nullptr && err.empty()) {
      err = std::string("artifact lacks symbol ") + name;
    }
    return p;
  };
  img.abi_version =
      reinterpret_cast<unsigned (*)()>(sym("ln_abi_version"));
  img.create =
      reinterpret_cast<void* (*)(const LnHost*)>(sym("ln_create"));
  img.destroy = reinterpret_cast<void (*)(void*)>(sym("ln_destroy"));
  img.start = reinterpret_cast<void (*)(void*, unsigned long long)>(
      sym("ln_start"));
  img.resolve = reinterpret_cast<void (*)(void*)>(sym("ln_resolve"));
  img.commit = reinterpret_cast<void (*)(void*, unsigned long long)>(
      sym("ln_commit"));
  img.chans = reinterpret_cast<LnChan* (*)(void*)>(sym("ln_chans"));
  img.export_state =
      reinterpret_cast<void (*)(void*, unsigned)>(sym("ln_export"));
  img.import_state =
      reinterpret_cast<void (*)(void*, unsigned)>(sym("ln_import"));
  img.flush_stats =
      reinterpret_cast<void (*)(void*)>(sym("ln_flush_stats"));
  if (!err.empty()) return false;
  if (const unsigned v = img.abi_version(); v != kLnAbiVersion) {
    err = "artifact ABI v" + std::to_string(v) + ", host expects v" +
          std::to_string(kLnAbiVersion);
    return false;
  }
  return true;
}

bool dlopen_artifact(const fs::path& so, LoadedImage& img, std::string& err) {
  img.dl = ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (img.dl == nullptr) {
    const char* why = ::dlerror();
    err = "dlopen failed: " + std::string(why != nullptr ? why : "unknown");
    return false;
  }
  if (!resolve_symbols(img, err)) {
    ::dlclose(img.dl);
    img = LoadedImage{};
    return false;
  }
  return true;
}

bool compile_artifact(const std::string& cxx, const fs::path& cpp,
                      const fs::path& so, int opt, std::string& err) {
  const fs::path tmp_so = so.string() + ".tmp." +
                          std::to_string(static_cast<unsigned>(::getpid()));
  const fs::path log = so.string() + ".log";
  std::ostringstream cmd;
  cmd << quoted(cxx) << " -std=c++17 -shared -fPIC -O" << opt << " -o "
      << quoted(tmp_so.string()) << " " << quoted(cpp.string()) << " > "
      << quoted(log.string()) << " 2>&1";
  detail::compile_invocation_counter().fetch_add(1,
                                                 std::memory_order_relaxed);
  const int rc = std::system(cmd.str().c_str());
  if (rc != 0) {
    std::string first_line;
    std::ifstream in(log);
    std::getline(in, first_line);
    err = "host compiler exited with status " + std::to_string(rc);
    if (!first_line.empty()) err += ": " + first_line;
    std::error_code ec;
    fs::remove(tmp_so, ec);
    return false;
  }
  // Atomic publication: concurrent processes race to rename, last one
  // wins, every winner's file has identical content (same cache key).
  std::error_code ec;
  fs::rename(tmp_so, so, ec);
  if (ec) {
    err = "cache publish failed: " + ec.message();
    fs::remove(tmp_so, ec);
    return false;
  }
  return true;
}

}  // namespace

bool native_available() noexcept { return true; }

bool load_native_image(const std::string& source, LoadedImage& img,
                       std::string& err) {
  err.clear();
  if (const char* force = std::getenv("LIBERTY_NATIVE_FORCE_FAIL");
      force != nullptr && force[0] == '1') {
    err = "forced failure (LIBERTY_NATIVE_FORCE_FAIL=1)";
    return false;
  }

  const std::string cxx = compiler_path();
  const std::string id = compiler_identification(cxx);
  if (id.empty()) {
    err = "host compiler '" + cxx + "' not found or not runnable";
    return false;
  }
  const int opt = backend_opt_level();
  const std::uint64_t key = native_cache_key(source, id, opt);

  std::error_code ec;
  const fs::path dir = cache_dir();
  fs::create_directories(dir, ec);
  if (ec) {
    err = "cache directory '" + dir.string() +
          "' not creatable: " + ec.message();
    return false;
  }
  const fs::path so = dir / ("ln_" + hex_key(key) + ".so");
  const fs::path cpp = dir / ("ln_" + hex_key(key) + ".cpp");

  if (fs::exists(so, ec) && dlopen_artifact(so, img, err)) {
    return true;  // cache hit: no compiler invocation
  }
  err.clear();

  {
    // Keep the source next to the artifact (diagnosis; also what
    // lss_run --dump-native-src points users at).
    const fs::path tmp = cpp.string() + ".tmp." +
                         std::to_string(static_cast<unsigned>(::getpid()));
    std::ofstream out(tmp);
    out << source;
    out.close();
    if (!out) {
      err = "cannot write generated source to '" + cpp.string() + "'";
      fs::remove(tmp, ec);
      return false;
    }
    fs::rename(tmp, cpp, ec);
  }

  if (!compile_artifact(cxx, cpp, so, opt, err)) return false;
  return dlopen_artifact(so, img, err);
}

void unload_native_image(LoadedImage& img) {
  if (img.dl != nullptr) ::dlclose(img.dl);
  img = LoadedImage{};
}

}  // namespace liberty::gen
