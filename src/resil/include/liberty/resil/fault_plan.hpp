// FaultPlan: a declarative, seeded, JSON-loadable description of the
// contract-level faults one run should suffer.
//
// The resilience layer's first principle is that a fault is *data*, not
// code: a plan names which connection (or module) misbehaves, how, and from
// which cycle — and the injector turns that into pure (connection, cycle)
// mappings at the kernel's fault seam.  Because a plan is a value it can be
// serialized into artifacts, replayed under a different scheduler, shrunk,
// or generated from a seed, and the same plan always produces the same
// faulty trajectory (see docs/resilience.md "Determinism").
//
// Fault taxonomy (one class per way the 3-signal contract can break):
//
//   corrupt_data   offered payloads are replaced with a seeded substitute
//                  that varies per cycle (a flaky datapath)
//   drop_enable    asserted offers are suppressed (a dead producer link)
//   stuck_channel  offered payloads are wedged at one fixed seeded value
//                  (a stuck latch, biting whenever data flows; idle cycles
//                  stay idle — faults corrupt or suppress offers but never
//                  fabricate one, see fault.hpp "Module-safety contract")
//   drop_ack       acks are forced to "refuses" (a deaf consumer link)
//   spurious_ack   acks are forced to "accepts" (a chattering consumer)
//   handler_throw  a module's handler fails outright at cycle start
//
// Environment fault classes target the durability layer rather than the
// simulated system (the DurableSupervisor queries them at spill time, so
// the checkpoint path itself runs under deterministic seeded injection):
//
//   torn_checkpoint    checkpoint writes are truncated at a seeded length
//                      (a crash mid-write; recovery must skip the file)
//   checkpoint_enospc  checkpoint writes fail outright (a full run dir)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "liberty/core/types.hpp"

namespace liberty::core {
class Netlist;
}

namespace liberty::resil {

inline constexpr const char* kFaultPlanSchemaName = "liberty.faultplan";
inline constexpr int kFaultPlanSchemaVersion = 1;

enum class FaultClass : std::uint8_t {
  CorruptData,
  DropEnable,
  StuckChannel,
  DropAck,
  SpuriousAck,
  HandlerThrow,
  TornCheckpoint,
  CheckpointEnospc,
};

inline constexpr std::size_t kFaultClassCount = 8;

/// Stable wire name of a fault class ("corrupt_data", "drop_ack", ...).
[[nodiscard]] std::string_view fault_class_name(FaultClass cls) noexcept;
/// Inverse of fault_class_name; throws liberty::Error on unknown names.
[[nodiscard]] FaultClass fault_class_from_name(std::string_view name);
/// Environment-fault classes perturb the durability layer (checkpoint
/// writes), not the simulated system; they target no connection or module.
[[nodiscard]] constexpr bool is_env_fault(FaultClass cls) noexcept {
  return cls == FaultClass::TornCheckpoint ||
         cls == FaultClass::CheckpointEnospc;
}
/// Channel-fault classes perturb a connection; HandlerThrow targets a
/// module and environment classes target the checkpoint path instead.
[[nodiscard]] constexpr bool is_channel_fault(FaultClass cls) noexcept {
  return cls != FaultClass::HandlerThrow && !is_env_fault(cls);
}

struct FaultSpec {
  FaultClass cls = FaultClass::DropAck;
  core::ConnId connection = 0;  // channel faults: target connection id
  std::string module;           // HandlerThrow: target module instance name
  core::Cycle from_cycle = 0;   // first afflicted cycle (permanent onward)
  std::string scheduler;  // restrict to one kind_name() ("" = every kind)
  bool masked = false;    // deactivated (recovery policies set this)

  [[nodiscard]] std::string describe() const;
  [[nodiscard]] bool operator==(const FaultSpec& o) const {
    return cls == o.cls && connection == o.connection && module == o.module &&
           from_cycle == o.from_cycle && scheduler == o.scheduler &&
           masked == o.masked;
  }
};

struct FaultPlan {
  std::uint64_t seed = 0;  // feeds the substitute-value generator
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool operator==(const FaultPlan& o) const {
    return seed == o.seed && faults == o.faults;
  }

  [[nodiscard]] std::string to_json() const;
  /// Parse a plan; throws liberty::Error on schema violations.
  static FaultPlan from_json(const std::string& text);
  /// Load from a file path; throws liberty::Error when unreadable.
  static FaultPlan load(const std::string& path);

  /// Seeded pseudo-random plan over a finalized netlist: `count` channel
  /// faults on connections drawn from the netlist (drop_ack targets are
  /// restricted to ungated AutoAccept connections so the default-control
  /// invariant makes them watchdog-detectable), with onset cycles in
  /// [0, horizon).  Same (seed, netlist shape) => same plan.
  static FaultPlan random(std::uint64_t seed, const core::Netlist& netlist,
                          core::Cycle horizon, std::size_t count = 1);
};

}  // namespace liberty::resil
