// Minimal JSON emit/parse support for the observability exporters.
//
// The exporters stream JSON (traces can be large, metrics want no
// intermediate tree), so JsonWriter is a comma-managing streaming writer
// over std::ostream.  JsonValue/json_parse is the inverse: a deliberately
// small recursive-descent parser used by the schema checks — tests and
// scripts/check.sh validate that every emitted artifact round-trips.
// Neither aims to be a general JSON library; both cover exactly the JSON
// subset the obs formats emit (finite numbers, \"-and-backslash escapes
// plus \uXXXX on input, UTF-8 passthrough).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace liberty::obs {

/// Escape a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Streaming JSON writer with automatic comma placement.  Callers balance
/// begin/end themselves; keys are only passed inside objects.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object(const char* key = nullptr) { open('{', key); }
  void end_object() { close('}'); }
  void begin_array(const char* key = nullptr) { open('[', key); }
  void end_array() { close(']'); }

  void field(const char* key, std::string_view v) {
    prefix(key);
    os_ << '"' << json_escape(v) << '"';
  }
  void field(const char* key, const char* v) {
    field(key, std::string_view(v));
  }
  void field(const char* key, double v);
  void field(const char* key, std::uint64_t v) {
    prefix(key);
    os_ << v;
  }
  void field(const char* key, unsigned v) {
    field(key, static_cast<std::uint64_t>(v));
  }
  void field(const char* key, int v) { field(key, static_cast<double>(v)); }
  void field(const char* key, bool v) {
    prefix(key);
    os_ << (v ? "true" : "false");
  }

  /// Raw array element (pre-rendered JSON; trace events use this to emit
  /// one compact line per event).
  void element_raw(std::string_view json) {
    prefix(nullptr);
    os_ << json;
  }

 private:
  void prefix(const char* key);
  void open(char bracket, const char* key);
  void close(char bracket);

  std::ostream& os_;
  std::size_t depth_ = 0;
  bool need_comma_ = false;
};

/// Parsed JSON document node (schema validation only; order-preserving).
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::Object;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::Array; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::String;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* get(std::string_view key) const noexcept;
};

/// Parse a complete JSON document; throws liberty::Error (with position
/// information) on malformed input or trailing garbage.
[[nodiscard]] JsonValue json_parse(std::string_view text);

}  // namespace liberty::obs
