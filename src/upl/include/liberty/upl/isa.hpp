// LRISC: the small load/store ISA used by every processor model in UPL.
//
// The paper's Figure 1 shows "Instruction Set Emulation" as a separate input
// woven into the constructed simulator.  LRISC plays that role here: this
// header defines the architecture (instructions, architectural state), an
// assembler for writing workloads, and a functional emulator that serves
// both as the semantic oracle for the microarchitectural models (they must
// retire the same state) and as the fastest abstraction level of a
// "processor" in mixed-abstraction systems.
//
// Architecture summary:
//   * 32 general registers r0..r31; r0 is hardwired to zero.
//   * 64-bit integer registers; word-addressed data memory (one 64-bit
//     value per address).
//   * Harvard organization: instructions live in a separate instruction
//     memory, indexed by PC (one instruction per PC step).
//   * OUT writes a register to an output log (the observable effect used by
//     tests); HALT stops the machine.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "liberty/support/error.hpp"

namespace liberty::upl {

enum class Op : std::uint8_t {
  // Register-register ALU.
  Add, Sub, Mul, Div, Rem, And, Or, Xor, Sll, Srl, Sra, Slt,
  // Register-immediate ALU.
  Addi, Andi, Ori, Xori, Slli, Srli, Slti,
  // Memory.
  Lw, Sw,
  // Control.
  Beq, Bne, Blt, Bge, Jal, Jalr,
  // System.
  Out, Halt, Nop,
};

[[nodiscard]] const char* op_name(Op op);
[[nodiscard]] bool is_branch(Op op);
[[nodiscard]] bool is_mem(Op op);
[[nodiscard]] bool is_alu(Op op);

struct Instr {
  Op op = Op::Nop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int64_t imm = 0;

  [[nodiscard]] std::string to_string() const;
};

/// An assembled program: instruction memory plus initial data memory.
struct Program {
  std::vector<Instr> code;
  std::unordered_map<std::uint64_t, std::int64_t> data;
  std::unordered_map<std::string, std::uint64_t> labels;
};

/// Assemble LRISC assembly text.
///
/// Syntax: one instruction per line; `;` or `#` start comments;
/// `label:` defines a code label; branch/jump targets may be labels or
/// absolute integers.  Memory operands are written `imm(rs)`.
/// Directives: `.word addr, value` initializes data memory.
/// Pseudo-instructions: li rd, imm / mv rd, rs / j target / nop.
///
/// Throws SpecError (with line numbers) on malformed input.
[[nodiscard]] Program assemble(const std::string& source,
                               const std::string& filename = "<asm>");

/// Architectural state + functional execution (the golden emulator).
class ArchState {
 public:
  /// The program is copied: an ArchState owns everything it needs, so it is
  /// safe to construct from a temporary (e.g. ArchState(assemble(src))).
  explicit ArchState(Program prog) : prog_(std::move(prog)) {
    mem_ = prog_.data;
  }

  [[nodiscard]] std::int64_t reg(std::size_t i) const { return regs_[i]; }
  void set_reg(std::size_t i, std::int64_t v) {
    if (i != 0) regs_[i] = v;
  }
  [[nodiscard]] std::uint64_t pc() const noexcept { return pc_; }
  void set_pc(std::uint64_t pc) noexcept { pc_ = pc; }
  [[nodiscard]] bool halted() const noexcept { return halted_; }

  [[nodiscard]] std::int64_t load(std::uint64_t addr) const {
    const auto it = mem_.find(addr);
    return it == mem_.end() ? 0 : it->second;
  }
  void store(std::uint64_t addr, std::int64_t v) { mem_[addr] = v; }

  [[nodiscard]] const std::vector<std::int64_t>& output() const noexcept {
    return out_;
  }
  [[nodiscard]] std::uint64_t instructions_retired() const noexcept {
    return retired_;
  }

  /// Fetch the instruction at `pc`, or Halt when past the end.
  [[nodiscard]] const Instr& fetch(std::uint64_t pc) const {
    static const Instr halt{Op::Halt, 0, 0, 0, 0};
    return pc < prog_.code.size() ? prog_.code[pc] : halt;
  }

  /// Execute one instruction; returns false once halted.
  bool step();

  /// Run until HALT or `max_steps`; returns instructions executed.
  std::uint64_t run(std::uint64_t max_steps = 1'000'000);

  /// Pure next-PC/effect computation shared with the timing models: applies
  /// `instr` to this state (used by execute stages so that timing and
  /// function cannot diverge).
  void apply(const Instr& instr);

 private:
  Program prog_;
  std::vector<std::int64_t> regs_ = std::vector<std::int64_t>(32, 0);
  std::unordered_map<std::uint64_t, std::int64_t> mem_;
  std::vector<std::int64_t> out_;
  std::uint64_t pc_ = 0;
  std::uint64_t retired_ = 0;
  bool halted_ = false;
};

/// Result of executing an instruction against a register file snapshot —
/// used by the pipelined models to compute results/branch outcomes in their
/// execute stages without committing them.
struct ExecResult {
  std::int64_t value = 0;       // ALU result / link address / store data
  std::uint64_t mem_addr = 0;   // for Lw/Sw
  bool taken = false;           // branch outcome
  std::uint64_t target = 0;     // branch/jump target
  bool writes_reg = false;
  bool halts = false;
  std::optional<std::int64_t> out;  // OUT payload
};

/// Evaluate `instr` given operand values (rs1, rs2) and its own PC.
[[nodiscard]] ExecResult evaluate(const Instr& instr, std::int64_t rs1,
                                  std::int64_t rs2, std::uint64_t pc);

}  // namespace liberty::upl
