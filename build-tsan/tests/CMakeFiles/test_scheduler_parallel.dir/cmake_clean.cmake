file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_parallel.dir/test_scheduler_parallel.cpp.o"
  "CMakeFiles/test_scheduler_parallel.dir/test_scheduler_parallel.cpp.o.d"
  "test_scheduler_parallel"
  "test_scheduler_parallel.pdb"
  "test_scheduler_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
