# Empty dependencies file for system_of_systems.
# This may be replaced when dependencies are built.
