// CCL: routers, topologies, traffic, bus, wireless channel, Orion power.
#include <gtest/gtest.h>

#include <map>

#include "liberty/ccl/ccl.hpp"
#include "liberty/core/simulator.hpp"
#include "liberty/pcl/pcl.hpp"
#include "test_util.hpp"

namespace {

using liberty::Value;
using liberty::core::Cycle;
using liberty::core::Netlist;
using liberty::core::Params;
using liberty::core::SchedulerKind;
using liberty::core::Simulator;
using namespace liberty::ccl;
using liberty::test::params;

/// Attach a generator and sink to every node of a fabric.
struct MeshRig {
  Netlist nl;
  Fabric fabric;
  std::vector<TrafficGen*> gens;
  std::vector<TrafficSink*> sinks;
};

void attach_endpoints(MeshRig& rig, const Params& gen_base,
                      std::size_t nodes, std::size_t cols) {
  for (std::size_t i = 0; i < nodes; ++i) {
    Params gp;
    for (const auto& [k, v] : gen_base.values()) gp.set(k, v);
    gp.set("id", static_cast<std::int64_t>(i));
    gp.set("nodes", static_cast<std::int64_t>(nodes));
    gp.set("cols", static_cast<std::int64_t>(cols));
    auto& g = rig.nl.make<TrafficGen>("gen" + std::to_string(i), gp);
    auto& s = rig.nl.make<TrafficSink>("sink" + std::to_string(i), Params());
    rig.gens.push_back(&g);
    rig.sinks.push_back(&s);
    rig.nl.connect_at(g.out("out"), 0, rig.fabric.inject_port(i), 0);
    rig.nl.connect_at(rig.fabric.eject_port(i), 0, s.in("in"), 0);
  }
}

std::uint64_t total_received(const MeshRig& rig) {
  std::uint64_t sum = 0;
  for (const auto* s : rig.sinks) sum += s->received();
  return sum;
}
std::uint64_t total_injected(const MeshRig& rig) {
  std::uint64_t sum = 0;
  for (const auto* g : rig.gens) sum += g->injected();
  return sum;
}

class CclParam : public ::testing::TestWithParam<SchedulerKind> {};
INSTANTIATE_TEST_SUITE_P(BothSchedulers, CclParam,
                         ::testing::Values(SchedulerKind::Dynamic,
                                           SchedulerKind::Static),
                         [](const auto& info) {
                           return info.param == SchedulerKind::Dynamic
                                      ? "Dynamic"
                                      : "Static";
                         });

TEST_P(CclParam, MeshDeliversAllUniformTraffic) {
  MeshRig rig;
  rig.fabric = build_mesh(rig.nl, "mesh", 4, 4);
  attach_endpoints(rig,
                   params({{"pattern", "uniform"}, {"rate", 0.05},
                           {"count", 20}, {"seed", 3}}),
                   16, 4);
  rig.nl.finalize();
  Simulator sim(rig.nl, GetParam());
  sim.run(4000);
  EXPECT_EQ(total_injected(rig), 16u * 20u);
  EXPECT_EQ(total_received(rig), 16u * 20u);
}

TEST_P(CclParam, XyRoutingTakesManhattanHops) {
  // Single fixed flow 0 -> 15 on a 4x4 mesh: every flit passes exactly the
  // 7 routers on the XY path (3 east, 3 south, plus the source router).
  Netlist nl;
  Fabric mesh = build_mesh(nl, "mesh", 4, 4);
  auto& gen = nl.make<TrafficGen>(
      "gen", params({{"pattern", "fixed"}, {"dst", 15}, {"rate", 0.2},
                     {"count", 25}, {"id", 0}, {"nodes", 16}}));
  auto& sink = nl.make<TrafficSink>("sink", Params());
  nl.connect_at(gen.out("out"), 0, mesh.inject_port(0), 0);
  nl.connect_at(mesh.eject_port(15), 0, sink.in("in"), 0);
  nl.finalize();
  Simulator sim(nl, GetParam());
  sim.run(1000);
  EXPECT_EQ(sink.received(), 25u);
  EXPECT_DOUBLE_EQ(sink.mean_hops(), 7.0);
}

TEST_P(CclParam, SchedulersBitIdenticalOnMesh) {
  auto run = [](SchedulerKind kind) {
    MeshRig rig;
    rig.fabric = build_mesh(rig.nl, "mesh", 3, 3);
    attach_endpoints(rig,
                     params({{"pattern", "uniform"}, {"rate", 0.3},
                             {"count", 50}, {"seed", 11}}),
                     9, 3);
    rig.nl.finalize();
    Simulator sim(rig.nl, kind);
    sim.run(1500);
    std::map<std::string, std::uint64_t> sig;
    for (std::size_t i = 0; i < 9; ++i) {
      sig["recv" + std::to_string(i)] = rig.sinks[i]->received();
      sig["lat" + std::to_string(i)] =
          static_cast<std::uint64_t>(rig.sinks[i]->mean_latency() * 1000);
    }
    return sig;
  };
  EXPECT_EQ(run(SchedulerKind::Dynamic), run(SchedulerKind::Static));
  (void)GetParam();
}

TEST(CclMesh, LatencyRisesWithLoad) {
  auto mean_latency_at = [](double rate) {
    MeshRig rig;
    rig.fabric = build_mesh(rig.nl, "mesh", 4, 4);
    attach_endpoints(rig,
                     params({{"pattern", "uniform"}, {"rate", rate},
                             {"seed", 5}}),
                     16, 4);
    rig.nl.finalize();
    Simulator sim(rig.nl);
    sim.run(3000);
    double lat = 0.0;
    for (const auto* s : rig.sinks) lat += s->mean_latency();
    return lat / 16.0;
  };
  const double low = mean_latency_at(0.02);
  const double high = mean_latency_at(0.35);
  EXPECT_GT(high, low * 1.3);
}

TEST(CclMesh, BackpressureNeverDropsFlits) {
  // Hotspot pattern at saturating load: flits queue, none vanish.
  MeshRig rig;
  rig.fabric = build_mesh(rig.nl, "mesh", 3, 3);
  attach_endpoints(rig,
                   params({{"pattern", "hotspot"}, {"hotspot", 4},
                           {"hotspot_frac", 0.9}, {"rate", 0.5},
                           {"count", 30}, {"seed", 2}}),
                   9, 3);
  rig.nl.finalize();
  Simulator sim(rig.nl);
  sim.run(6000);
  EXPECT_EQ(total_received(rig), total_injected(rig));
  // All 8 non-hotspot nodes inject their full 30; the hotspot node drops
  // the ~90% of its own packets that would address itself.
  EXPECT_GE(total_received(rig), 8u * 30u);
  EXPECT_LE(total_received(rig), 9u * 30u);
}

TEST(CclRing, ShortestPathDirection) {
  Netlist nl;
  Fabric ring = build_ring(nl, "ring", 8);
  Params gp = liberty::test::params({{"pattern", "fixed"}, {"dst", 1},
                                     {"rate", 0.2}, {"count", 10},
                                     {"id", 7}, {"nodes", 8}});
  auto& gen = nl.make<TrafficGen>("gen", gp);
  auto& sink = nl.make<TrafficSink>("sink", Params());
  nl.connect_at(gen.out("out"), 0, ring.inject_port(7), 0);
  nl.connect_at(ring.eject_port(1), 0, sink.in("in"), 0);
  nl.finalize();
  Simulator sim(nl);
  sim.run(1000);
  EXPECT_EQ(sink.received(), 10u);
  // 7 -> 1 clockwise is 2 hops of distance: passes routers 7, 0, 1 = 3.
  EXPECT_DOUBLE_EQ(sink.mean_hops(), 3.0);
}

// ---------------------------------------------------------------------------
// Bus
// ---------------------------------------------------------------------------

TEST_P(CclParam, BusBroadcastsToAllReceivers) {
  Netlist nl;
  auto& bus = nl.make<Bus>("bus", params({{"occupancy", 2}}));
  auto& g = nl.make<TrafficGen>(
      "g", params({{"pattern", "fixed"}, {"dst", 1}, {"rate", 1.0},
                   {"count", 5}, {"id", 0}, {"nodes", 4}}));
  std::vector<TrafficSink*> sinks;
  nl.connect(g.out("out"), bus.in("in"));
  for (int i = 0; i < 3; ++i) {
    auto& s = nl.make<TrafficSink>("s" + std::to_string(i), Params());
    sinks.push_back(&s);
    nl.connect(bus.out("out"), s.in("in"));
  }
  nl.finalize();
  Simulator sim(nl, GetParam());
  sim.run(200);
  for (const auto* s : sinks) EXPECT_EQ(s->received(), 5u);
  EXPECT_EQ(nl.get("bus").stats().counter_value("transactions"), 5u);
}

TEST(CclBus, OccupancySerializesMasters) {
  Netlist nl;
  auto& bus = nl.make<Bus>("bus", params({{"occupancy", 4}}));
  for (int i = 0; i < 2; ++i) {
    auto& g = nl.make<TrafficGen>(
        "g" + std::to_string(i),
        params({{"pattern", "fixed"}, {"dst", 0}, {"rate", 1.0},
                {"count", 10}, {"id", 1}, {"nodes", 4}}));
    nl.connect(g.out("out"), bus.in("in"));
  }
  auto& s = nl.make<TrafficSink>("s", Params());
  nl.connect(bus.out("out"), s.in("in"));
  nl.finalize();
  Simulator sim(nl);
  const auto cycles = sim.run(300);
  (void)cycles;
  EXPECT_EQ(s.received(), 20u);
  // 20 transactions x >= 4 cycles each cannot finish before cycle 80.
  EXPECT_GT(nl.get("bus").stats().counter_value("busy_cycles"), 75u);
  EXPECT_GT(nl.get("bus").stats().counter_value("conflicts"), 0u);
}

// ---------------------------------------------------------------------------
// Wireless
// ---------------------------------------------------------------------------

TEST_P(CclParam, WirelessSingleSenderDelivers) {
  Netlist nl;
  auto& ch = nl.make<WirelessChannel>("air",
                                      params({{"airtime", 4}, {"loss", 0.0}}));
  auto& g = nl.make<TrafficGen>(
      "g", params({{"pattern", "fixed"}, {"dst", 1}, {"rate", 0.3},
                   {"count", 12}, {"id", 0}, {"nodes", 2}, {"seed", 9}}));
  auto& s0 = nl.make<TrafficSink>("s0", Params());
  auto& s1 = nl.make<TrafficSink>("s1", Params());
  nl.connect(g.out("out"), ch.in("in"));
  nl.connect_at(ch.out("out"), 0, s0.in("in"), 0);
  nl.connect_at(ch.out("out"), 1, s1.in("in"), 0);
  nl.finalize();
  Simulator sim(nl, GetParam());
  sim.run(1000);
  EXPECT_EQ(s1.received(), 12u);
  EXPECT_EQ(s0.received(), 0u);
  EXPECT_EQ(nl.get("air").stats().counter_value("collisions"), 0u);
}

TEST(CclWireless, SimultaneousStartersCollide) {
  Netlist nl;
  auto& ch = nl.make<WirelessChannel>("air",
                                      params({{"airtime", 2}, {"loss", 0.0}}));
  // Two period-synchronized senders always start together -> all collide.
  for (int i = 0; i < 2; ++i) {
    auto& g = nl.make<TrafficGen>(
        "g" + std::to_string(i),
        params({{"pattern", "fixed"}, {"dst", 2}, {"rate", 1.0},
                {"count", 10}, {"id", i}, {"nodes", 3}}));
    nl.connect(g.out("out"), ch.in("in"));
  }
  auto& s = nl.make<TrafficSink>("s", Params());
  nl.connect_at(ch.out("out"), 2, s.in("in"), 0);
  nl.finalize();
  Simulator sim(nl);
  sim.run(400);
  EXPECT_EQ(s.received(), 0u);
  EXPECT_EQ(nl.get("air").stats().counter_value("collisions"), 10u);
  EXPECT_EQ(nl.get("air").stats().counter_value("lost"), 20u);
}

TEST(CclWireless, LossProbabilityDropsPackets) {
  Netlist nl;
  auto& ch = nl.make<WirelessChannel>(
      "air", params({{"airtime", 1}, {"loss", 0.5}, {"seed", 4}}));
  auto& g = nl.make<TrafficGen>(
      "g", params({{"pattern", "fixed"}, {"dst", 1}, {"rate", 1.0},
                   {"count", 200}, {"id", 0}, {"nodes", 2}}));
  auto& s = nl.make<TrafficSink>("s", Params());
  nl.connect(g.out("out"), ch.in("in"));
  nl.connect_at(ch.out("out"), 1, s.in("in"), 0);
  nl.finalize();
  Simulator sim(nl);
  sim.run(3000);
  const auto delivered = s.received();
  EXPECT_GT(delivered, 60u);
  EXPECT_LT(delivered, 140u);  // ~100 of 200 at 50% loss
}

// ---------------------------------------------------------------------------
// Orion power / thermal
// ---------------------------------------------------------------------------

TEST(CclPower, DynamicEnergyScalesWithLoadOverLeakageFloor) {
  auto energies = [](double rate) {
    MeshRig rig;
    rig.fabric = build_mesh(rig.nl, "mesh", 3, 3);
    attach_endpoints(rig,
                     params({{"pattern", "uniform"}, {"rate", rate},
                             {"seed", 8}}),
                     9, 3);
    rig.nl.finalize();
    Simulator sim(rig.nl);
    sim.run(2000);
    return std::pair<double, double>(rig.fabric.total_dynamic_pj(),
                                     rig.fabric.total_leakage_pj());
  };
  const auto [dyn_idle, leak_idle] = energies(0.0);
  const auto [dyn_low, leak_low] = energies(0.05);
  const auto [dyn_high, leak_high] = energies(0.3);
  EXPECT_EQ(dyn_idle, 0.0);
  EXPECT_GT(leak_idle, 0.0);                 // leakage floor exists
  EXPECT_GT(dyn_high, dyn_low * 3.0);        // dynamic scales with load
  EXPECT_NEAR(leak_low, leak_high, 1e-6);    // leakage is load-independent
  EXPECT_NEAR(leak_low, leak_idle, 1e-6);
}

TEST(CclPower, ThermalRisesUnderLoad) {
  MeshRig rig;
  rig.fabric = build_mesh(rig.nl, "mesh", 2, 2);
  attach_endpoints(rig,
                   params({{"pattern", "uniform"}, {"rate", 0.5},
                           {"seed", 6}}),
                   4, 2);
  rig.nl.finalize();
  Simulator sim(rig.nl);
  sim.run(3000);
  for (const Router* r : rig.fabric.routers) {
    EXPECT_GT(r->thermal().temperature(), 45.0);  // above ambient
  }
}

TEST(CclPower, WiderFlitsCostMoreEnergy) {
  PowerConfig narrow;
  narrow.flit_bits = 32;
  PowerConfig wide;
  wide.flit_bits = 128;
  RouterPower pn(narrow), pw(wide);
  pn.on_buffer_write();
  pw.on_buffer_write();
  EXPECT_GT(pw.dynamic_pj(), pn.dynamic_pj() * 3.9);
}

}  // namespace
