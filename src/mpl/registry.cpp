#include <typeindex>

#include "liberty/core/checkpoint.hpp"
#include "liberty/mpl/mpl.hpp"

namespace liberty::mpl {

using liberty::core::ByteReader;
using liberty::core::ByteWriter;
using liberty::core::ModuleRegistry;
using liberty::core::simple_factory;

namespace {

void put_words(ByteWriter& w, const std::vector<std::int64_t>& words) {
  w.put_u32(static_cast<std::uint32_t>(words.size()));
  for (const std::int64_t x : words) w.put_i64(x);
}

std::vector<std::int64_t> get_words(ByteReader& r) {
  const std::uint32_t n = r.get_u32();
  std::vector<std::int64_t> words;
  words.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) words.push_back(r.get_i64());
  return words;
}

void register_payload_codecs() {
  core::register_payload_codec(
      "mpl.cohmsg", std::type_index(typeid(CohMsg)),
      [](const Payload& p, ByteWriter& w) {
        const auto& m = static_cast<const CohMsg&>(p);
        w.put_u8(static_cast<std::uint8_t>(m.type));
        w.put_u64(m.line);
        w.put_u64(m.src);
        w.put_u64(m.dst);
        w.put_u64(m.tag);
        put_words(w, m.words);
        w.put_u8(m.exclusive ? 1 : 0);
      },
      [](ByteReader& r) {
        const auto type = static_cast<CohMsg::Type>(r.get_u8());
        const std::uint64_t line = r.get_u64();
        const auto src = static_cast<std::size_t>(r.get_u64());
        const auto dst = static_cast<std::size_t>(r.get_u64());
        const std::uint64_t tag = r.get_u64();
        std::vector<std::int64_t> words = get_words(r);
        const bool exclusive = r.get_u8() != 0;
        return Value::make<CohMsg>(type, line, src, dst, tag,
                                   std::move(words), exclusive);
      });
  core::register_payload_codec(
      "mpl.dmachunk", std::type_index(typeid(DmaChunk)),
      [](const Payload& p, ByteWriter& w) {
        const auto& d = static_cast<const DmaChunk&>(p);
        w.put_u64(d.dst_node);
        w.put_u64(d.dst_addr);
        put_words(w, d.words);
        w.put_u64(d.xfer_id);
        w.put_u8(d.last ? 1 : 0);
      },
      [](ByteReader& r) {
        const auto dst_node = static_cast<std::size_t>(r.get_u64());
        const std::uint64_t dst_addr = r.get_u64();
        std::vector<std::int64_t> words = get_words(r);
        const std::uint64_t xfer_id = r.get_u64();
        const bool last = r.get_u8() != 0;
        return Value::make<DmaChunk>(dst_node, dst_addr, std::move(words),
                                     xfer_id, last);
      });
}

}  // namespace

void register_mpl(ModuleRegistry& r) {
  register_payload_codecs();
  r.register_template("mpl.snoop_cache", "MSI snooping coherent cache",
                      simple_factory<SnoopCache>());
  r.register_template("mpl.snoop_memory", "memory controller on a snoop bus",
                      simple_factory<SnoopMemory>());
  r.register_template("mpl.dir_cache", "directory-protocol coherent cache",
                      simple_factory<DirCache>());
  r.register_template("mpl.directory", "full-map MSI directory + memory",
                      simple_factory<DirectoryCtl>());
  r.register_template("mpl.ordering", "SC/TSO memory ordering controller",
                      simple_factory<OrderingCtl>());
  r.register_template("mpl.dma", "DMA controller for message passing",
                      simple_factory<DmaCtl>());
}

}  // namespace liberty::mpl
