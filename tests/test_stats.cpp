// Support-library statistics: Histogram::quantile edge cases (the empty /
// q=0 / q=1 / overflow contract) and the StatSet dump format the golden
// tests snapshot.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "liberty/support/stats.hpp"

namespace {

using liberty::Histogram;
using liberty::StatSet;

TEST(Histogram, EmptyQuantileIsZero) {
  const Histogram h(4, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileZeroIsZero) {
  Histogram h(4, 1.0);
  h.add(2.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), 0.0);
}

TEST(Histogram, QuantileWalksBuckets) {
  Histogram h(4, 1.0);  // buckets [0,1) [1,2) [2,3) [3,4) + overflow
  h.add(0.5);
  h.add(1.5);
  h.add(2.5);
  h.add(3.5);
  // Rank ceil(q*4): upper edge of the bucket holding that sample.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.51), 3.0);  // rank 3 after ceiling
}

TEST(Histogram, QuantileOneIsLastOccupiedBucketEdge) {
  Histogram h(4, 2.0);
  h.add(1.0);  // bucket 0
  h.add(5.0);  // bucket 2
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);   // upper edge of [4,6)
  EXPECT_DOUBLE_EQ(h.quantile(1.5), 6.0);   // q clamps to 1
}

TEST(Histogram, OverflowSamplesReportOverflowEdge) {
  Histogram h(4, 1.0);
  h.add(0.5);
  h.add(100.0);  // lands in the overflow bucket
  // 5 buckets total (4 regular + overflow): upper edge = 5 * width.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
}

TEST(Histogram, SingleSample) {
  Histogram h(8, 0.5);
  h.add(1.2);  // bucket 2 = [1.0, 1.5)
  EXPECT_DOUBLE_EQ(h.quantile(0.01), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.5);
}

TEST(StatSet, DumpIncludesQuantiles) {
  StatSet stats;
  stats.counter("events").inc(3);
  auto& h = stats.histogram("latency", 16, 1.0);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10));
  std::ostringstream oss;
  stats.dump(oss, "mod");
  const std::string out = oss.str();
  EXPECT_NE(out.find("mod.events = 3"), std::string::npos) << out;
  EXPECT_NE(out.find("p50="), std::string::npos) << out;
  EXPECT_NE(out.find("p95="), std::string::npos) << out;
  EXPECT_NE(out.find("p99="), std::string::npos) << out;
}

}  // namespace
