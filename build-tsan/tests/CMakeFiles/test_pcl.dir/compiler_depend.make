# Empty compiler generated dependencies file for test_pcl.
# This may be replaced when dependencies are built.
