// Branch prediction units (§3.2 lists them among UPL's elements).
//
// Predictors are plain component classes embedded in fetch-stage modules —
// they are *algorithmic parameters* of the fetch template: the same fetch
// module is customized with any of these without code changes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "liberty/core/state.hpp"
#include "liberty/support/error.hpp"

namespace liberty::upl {

/// Direction predictor interface.  `predict` must not mutate state;
/// `update` trains with the resolved outcome.  save/load serialize the
/// training state so an embedding module's snapshot covers its predictor
/// (the default is for stateless predictors).
class Predictor {
 public:
  virtual ~Predictor() = default;
  [[nodiscard]] virtual bool predict(std::uint64_t pc) const = 0;
  virtual void update(std::uint64_t pc, bool taken) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void save(liberty::core::StateWriter&) const {}
  virtual void load(liberty::core::StateReader&) {}
};

/// Always predicts the fixed direction.
class StaticPredictor final : public Predictor {
 public:
  explicit StaticPredictor(bool taken) : taken_(taken) {}
  [[nodiscard]] bool predict(std::uint64_t) const override { return taken_; }
  void update(std::uint64_t, bool) override {}
  [[nodiscard]] std::string name() const override {
    return taken_ ? "static-taken" : "static-not-taken";
  }

 private:
  bool taken_;
};

/// Classic 2-bit saturating counter table indexed by PC.
class BimodalPredictor final : public Predictor {
 public:
  explicit BimodalPredictor(std::size_t entries = 1024)
      : table_(entries, 1) {}  // weakly not-taken
  [[nodiscard]] bool predict(std::uint64_t pc) const override {
    return table_[pc % table_.size()] >= 2;
  }
  void update(std::uint64_t pc, bool taken) override {
    std::uint8_t& c = table_[pc % table_.size()];
    if (taken && c < 3) ++c;
    if (!taken && c > 0) --c;
  }
  [[nodiscard]] std::string name() const override { return "bimodal"; }
  void save(liberty::core::StateWriter& w) const override {
    for (const std::uint8_t c : table_) w.put_u64(c);
  }
  void load(liberty::core::StateReader& r) override {
    for (std::uint8_t& c : table_) c = static_cast<std::uint8_t>(r.get_u64());
  }

 private:
  std::vector<std::uint8_t> table_;
};

/// GShare: global history XOR PC indexes a 2-bit counter table.
class GSharePredictor final : public Predictor {
 public:
  explicit GSharePredictor(std::size_t entries = 4096)
      : table_(entries, 1) {}
  [[nodiscard]] bool predict(std::uint64_t pc) const override {
    return table_[index(pc)] >= 2;
  }
  void update(std::uint64_t pc, bool taken) override {
    std::uint8_t& c = table_[index(pc)];
    if (taken && c < 3) ++c;
    if (!taken && c > 0) --c;
    history_ = (history_ << 1) | (taken ? 1 : 0);
  }
  [[nodiscard]] std::string name() const override { return "gshare"; }
  void save(liberty::core::StateWriter& w) const override {
    for (const std::uint8_t c : table_) w.put_u64(c);
    w.put_u64(history_);
  }
  void load(liberty::core::StateReader& r) override {
    for (std::uint8_t& c : table_) c = static_cast<std::uint8_t>(r.get_u64());
    history_ = r.get_u64();
  }

 private:
  [[nodiscard]] std::size_t index(std::uint64_t pc) const {
    return static_cast<std::size_t>((pc ^ history_) % table_.size());
  }
  std::vector<std::uint8_t> table_;
  std::uint64_t history_ = 0;
};

/// Tournament: a 2-bit chooser selects between bimodal and gshare.
class TournamentPredictor final : public Predictor {
 public:
  explicit TournamentPredictor(std::size_t entries = 1024)
      : bimodal_(entries), gshare_(entries * 4), chooser_(entries, 1) {}
  [[nodiscard]] bool predict(std::uint64_t pc) const override {
    return chooser_[pc % chooser_.size()] >= 2 ? gshare_.predict(pc)
                                               : bimodal_.predict(pc);
  }
  void update(std::uint64_t pc, bool taken) override {
    const bool pb = bimodal_.predict(pc);
    const bool pg = gshare_.predict(pc);
    std::uint8_t& ch = chooser_[pc % chooser_.size()];
    if (pb != pg) {
      // Move the chooser toward whichever component was right.
      if (pg == taken && ch < 3) ++ch;
      if (pb == taken && ch > 0) --ch;
    }
    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
  }
  [[nodiscard]] std::string name() const override { return "tournament"; }
  void save(liberty::core::StateWriter& w) const override {
    bimodal_.save(w);
    gshare_.save(w);
    for (const std::uint8_t c : chooser_) w.put_u64(c);
  }
  void load(liberty::core::StateReader& r) override {
    bimodal_.load(r);
    gshare_.load(r);
    for (std::uint8_t& c : chooser_) c = static_cast<std::uint8_t>(r.get_u64());
  }

 private:
  BimodalPredictor bimodal_;
  GSharePredictor gshare_;
  std::vector<std::uint8_t> chooser_;
};

/// Branch target buffer: PC -> last-seen target.
class Btb {
 public:
  explicit Btb(std::size_t entries = 512)
      : tags_(entries, kInvalid), targets_(entries, 0) {}

  [[nodiscard]] bool lookup(std::uint64_t pc, std::uint64_t& target) const {
    const std::size_t i = pc % tags_.size();
    if (tags_[i] != pc) return false;
    target = targets_[i];
    return true;
  }
  void insert(std::uint64_t pc, std::uint64_t target) {
    const std::size_t i = pc % tags_.size();
    tags_[i] = pc;
    targets_[i] = target;
  }

 private:
  static constexpr std::uint64_t kInvalid = ~0ULL;
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> targets_;
};

/// Return address stack (used for jalr returns).
class Ras {
 public:
  explicit Ras(std::size_t depth = 16) : depth_(depth) {}
  void push(std::uint64_t addr) {
    if (stack_.size() == depth_) stack_.erase(stack_.begin());
    stack_.push_back(addr);
  }
  [[nodiscard]] bool pop(std::uint64_t& addr) {
    if (stack_.empty()) return false;
    addr = stack_.back();
    stack_.pop_back();
    return true;
  }

 private:
  std::size_t depth_;
  std::vector<std::uint64_t> stack_;
};

/// Factory used by module parameters: "taken", "not_taken", "bimodal",
/// "gshare", "tournament".
[[nodiscard]] std::unique_ptr<Predictor> make_predictor(
    const std::string& kind, std::size_t entries = 1024);

}  // namespace liberty::upl
