file(REMOVE_RECURSE
  "CMakeFiles/test_pcl.dir/test_pcl.cpp.o"
  "CMakeFiles/test_pcl.dir/test_pcl.cpp.o.d"
  "test_pcl"
  "test_pcl.pdb"
  "test_pcl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
