// Internals of the native codegen backend (liberty/gen/native.hpp is the
// public face).  Three pieces:
//
//   * the runtime ABI the generated translation unit exports (LnChan,
//     LnHost, the ln_* entry points) — the contract is documented in
//     docs/codegen.md and versioned through kLnAbiVersion;
//   * NativePlan, the eligibility analysis result (which modules/channels
//     the emitter owns, plus the exclusion masks handed to the bytecode
//     lowerer for the residue);
//   * the emitter and the toolchain driver entry points.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "liberty/core/netlist.hpp"
#include "liberty/core/opt.hpp"
#include "liberty/core/scheduler.hpp"

namespace liberty::gen {

// ---------------------------------------------------------------------------
// Runtime ABI (host-side mirror of the declarations the emitter writes).
// C layout throughout: the generated TU is compiled by whatever host
// compiler is available, possibly not the one that built this library.

/// One channel's POD image, in netlist connection-id order (ln_chans).
/// `val` carries the forward payload for integer lanes; token lanes leave
/// it untouched.  en/ack are 0/1 — the image rewrites both every cycle, so
/// there is no Unknown encoding.
struct LnChan {
  unsigned char en;
  unsigned char ack;
  long long val;
};

/// Host services passed to ln_create.  `ctx` threads back through every
/// callback.  put_*/get_* stream state slots during ln_export/ln_import
/// (the host holds an active StateWriter/StateReader); stat_counter /
/// stat_acc flush shadow statistics during ln_flush_stats; stop forwards a
/// sink's request_stop.
struct LnHost {
  void* ctx;
  void (*stop)(void* ctx, unsigned mod_slot);
  void (*put_u64)(void* ctx, unsigned long long v);
  void (*put_i64)(void* ctx, long long v);
  void (*put_tok)(void* ctx);
  unsigned long long (*get_u64)(void* ctx);
  long long (*get_i64)(void* ctx);
  void (*get_tok)(void* ctx);
  void (*stat_counter)(void* ctx, unsigned mod_slot, const char* name,
                       unsigned long long delta);
  void (*stat_acc)(void* ctx, unsigned mod_slot, const char* name,
                   unsigned long long count, double sum, double min,
                   double max);
};

/// Bumped on any layout or semantic change to the contract above or to the
/// ln_* signatures; a loaded image reporting a different version is
/// rejected (stale cache entries from older builds are keyed out by source
/// content anyway, so this guards only hand-edited artifacts).
inline constexpr unsigned kLnAbiVersion = 1;

/// A dlopened, symbol-resolved artifact.
struct LoadedImage {
  void* dl = nullptr;
  unsigned (*abi_version)() = nullptr;
  void* (*create)(const LnHost* host) = nullptr;
  void (*destroy)(void* img) = nullptr;
  void (*start)(void* img, unsigned long long cycle) = nullptr;
  void (*resolve)(void* img) = nullptr;
  void (*commit)(void* img, unsigned long long cycle) = nullptr;
  LnChan* (*chans)(void* img) = nullptr;
  void (*export_state)(void* img, unsigned mod_slot) = nullptr;
  void (*import_state)(void* img, unsigned mod_slot) = nullptr;
  void (*flush_stats)(void* img) = nullptr;

  [[nodiscard]] bool loaded() const noexcept { return dl != nullptr; }
};

// ---------------------------------------------------------------------------
// Eligibility analysis.

/// What the image executes.  Slots index `modules` (ln_export/ln_import
/// address modules by slot); `channels` fixes the LnChan array order.
struct NativePlan {
  enum Kind : std::uint8_t { kSource = 0, kQueue = 1, kDelay = 2, kSink = 3 };
  struct Slot {
    liberty::core::Module* module = nullptr;
    Kind kind = kSource;
    bool token = false;          // lane carries tokens (no payload)
    std::int32_t in_chan = -1;   // LnChan index of the input connection
    std::int32_t out_chan = -1;  // LnChan index of the output connection
  };
  std::vector<Slot> slots;
  std::vector<liberty::core::Connection*> channels;
  std::vector<char> channel_token;  // parallel to channels: token lane
  std::vector<char> module_mask;  // by ModuleId: image-owned modules
  std::vector<char> scc_mask;     // by SCC index: image-owned channels

  [[nodiscard]] bool empty() const noexcept { return slots.empty(); }
};

/// Find every image-executable component: whole weakly-connected linear
/// chains Source -> {Queue|Delay}* -> Sink of stock PCL modules (exact
/// typeid) whose parameters stay inside the emitter's recipe — counter or
/// token payloads, deterministic arrivals, no ack bypass, no consume
/// hooks, no stamps — and whose channels are gate-free singleton SCCs,
/// untouched by quarantine and by the optimizer plan.  All-or-nothing per
/// component: one ineligible member rejects the whole chain (the bytecode
/// tapes keep it), so no handshake ever crosses the image boundary.
[[nodiscard]] NativePlan analyze_native(liberty::core::Netlist& netlist,
                                        const liberty::core::ScheduleGraph& graph,
                                        const liberty::core::OptPlan* plan);

/// Lower the plan to one self-contained C++ translation unit implementing
/// the ln_* ABI for exactly these modules, bit-identically to their
/// in-object implementations.
[[nodiscard]] std::string emit_native_source(const NativePlan& plan);

// ---------------------------------------------------------------------------
// Toolchain driver.

/// Compile `source` (or reuse the content-addressed cache entry) and
/// dlopen the artifact.  On success returns true and fills `img`; on any
/// failure — no usable compiler, compile error, dlopen/symbol/ABI mismatch,
/// or the LIBERTY_NATIVE_FORCE_FAIL=1 override — returns false with a
/// one-line reason in `err` and leaves `img` empty.
[[nodiscard]] bool load_native_image(const std::string& source,
                                     LoadedImage& img, std::string& err);

/// dlclose + destroy-function bookkeeping (safe on an empty image).
void unload_native_image(LoadedImage& img);

namespace detail {

/// Bumped by the toolchain driver once per host-compiler invocation
/// (defined with the options block so OFF builds read zero).
std::atomic<std::uint64_t>& compile_invocation_counter();
/// Validated cache reuses / artifacts renamed aside / retried invocations /
/// deadline kills — same definition site, same OFF-build-reads-zero rule.
std::atomic<std::uint64_t>& cache_hit_counter();
std::atomic<std::uint64_t>& cache_quarantine_counter();
std::atomic<std::uint64_t>& compile_retry_counter();
std::atomic<std::uint64_t>& compile_timeout_counter();

}  // namespace detail

}  // namespace liberty::gen
